"""Tests for list assignments, verification, greedy and exact coloring."""

import pytest

from repro.coloring.assignment import ListAssignment, random_lists, uniform_lists
from repro.coloring.exact import (
    chromatic_number,
    is_k_colorable,
    list_coloring_search,
)
from repro.coloring.greedy import (
    degeneracy_greedy_coloring,
    dsatur_coloring,
    greedy_coloring,
    greedy_list_coloring,
)
from repro.coloring.verification import (
    is_complete,
    is_proper_coloring,
    number_of_colors,
    respects_lists,
    verify_coloring,
    verify_list_coloring,
)
from repro.errors import ColoringError, ListAssignmentError
from repro.graphs.generators import classic, planar, surfaces


# -- list assignments ---------------------------------------------------------

def test_uniform_lists():
    g = classic.cycle(5)
    lists = uniform_lists(g, 3)
    assert lists.minimum_size() == 3
    assert lists.covers(g)
    assert lists.palette() == frozenset({1, 2, 3})


def test_random_lists_sizes_and_determinism():
    g = classic.cycle(6)
    a = random_lists(g, 3, seed=1)
    b = random_lists(g, 3, seed=1)
    assert all(len(a[v]) == 3 for v in g)
    assert a.as_dict() == b.as_dict()
    with pytest.raises(ListAssignmentError):
        random_lists(g, 4, palette_size=3)


def test_list_assignment_missing_vertex():
    lists = ListAssignment({1: {1, 2}})
    with pytest.raises(ListAssignmentError):
        lists[2]
    assert lists.get(2) == frozenset()


def test_restrict_and_without_colors():
    g = classic.path(4)
    lists = uniform_lists(g, 3)
    restricted = lists.restrict([0, 1])
    assert len(restricted) == 2
    removed = lists.without_colors({0: [1, 2]})
    assert removed[0] == frozenset({3})
    assert removed[1] == frozenset({1, 2, 3})


def test_pruned_by_coloring_observation_5_1():
    g = classic.star(3)
    lists = uniform_lists(g, 3)
    pruned = lists.pruned_by_coloring(g, {1: 1, 2: 2})
    assert pruned[0] == frozenset({3})
    assert 1 not in pruned  # colored vertices dropped
    # Observation 5.1: |L'(v)| >= d - d_G(v) + d_H(v)
    assert len(pruned[0]) >= 3 - g.degree(0) + 1


def test_require_minimum():
    g = classic.path(3)
    lists = uniform_lists(g, 2)
    lists.require_minimum(g, 2)
    with pytest.raises(ListAssignmentError):
        lists.require_minimum(g, 3)


# -- verification --------------------------------------------------------------

def test_verification_predicates():
    g = classic.cycle(4)
    good = {0: 1, 1: 2, 2: 1, 3: 2}
    bad = {0: 1, 1: 1, 2: 1, 3: 2}
    partial = {0: 1}
    assert is_proper_coloring(g, good)
    assert not is_proper_coloring(g, bad)
    assert is_complete(g, good)
    assert not is_complete(g, partial)
    assert number_of_colors(good) == 2
    lists = uniform_lists(g, 2)
    assert respects_lists(good, lists)
    assert not respects_lists({0: 7}, lists)


def test_verify_coloring_raises():
    g = classic.cycle(4)
    verify_coloring(g, {0: 1, 1: 2, 2: 1, 3: 2})
    with pytest.raises(ColoringError):
        verify_coloring(g, {0: 1, 1: 1, 2: 1, 3: 2})
    with pytest.raises(ColoringError):
        verify_coloring(g, {0: 1})
    with pytest.raises(ColoringError):
        verify_list_coloring(g, {0: 9, 1: 2, 2: 9, 3: 2}, uniform_lists(g, 2))


# -- greedy --------------------------------------------------------------------

def test_greedy_coloring_proper_and_bounded():
    g = planar.delaunay_triangulation(40, seed=1)
    coloring = greedy_coloring(g)
    verify_coloring(g, coloring)
    assert number_of_colors(coloring) <= g.max_degree() + 1


def test_degeneracy_greedy_coloring_planar():
    g = planar.stacked_triangulation(40, seed=2)
    coloring = degeneracy_greedy_coloring(g)
    verify_coloring(g, coloring)
    assert number_of_colors(coloring) <= 4  # 3-degenerate


def test_dsatur_coloring():
    g = classic.complete_bipartite(4, 4)
    coloring = dsatur_coloring(g)
    verify_coloring(g, coloring)
    assert number_of_colors(coloring) == 2


def test_greedy_list_coloring_success_and_failure():
    g = classic.path(4)
    lists = uniform_lists(g, 2)
    coloring = greedy_list_coloring(g, lists)
    verify_list_coloring(g, coloring, lists)
    # adversarial order on a triangle with 2-lists must fail
    t = classic.complete_graph(3)
    with pytest.raises(ColoringError):
        greedy_list_coloring(t, uniform_lists(t, 2))


def test_greedy_list_coloring_respects_partial():
    g = classic.path(3)
    lists = uniform_lists(g, 2)
    coloring = greedy_list_coloring(g, lists, partial={1: 2})
    assert coloring[1] == 2
    verify_list_coloring(g, coloring, lists)


# -- exact ----------------------------------------------------------------------

def test_chromatic_number_of_classic_graphs():
    assert chromatic_number(classic.complete_graph(5)) == 5
    assert chromatic_number(classic.cycle(7)) == 3
    assert chromatic_number(classic.cycle(8)) == 2
    assert chromatic_number(classic.random_tree(12, seed=3)) == 2
    assert chromatic_number(classic.empty_graph(4)) == 1


def test_chromatic_number_upper_bound_enforced():
    with pytest.raises(ValueError):
        chromatic_number(classic.complete_graph(5), upper_bound=3)


def test_is_k_colorable():
    assert is_k_colorable(classic.cycle(5), 3)
    assert not is_k_colorable(classic.cycle(5), 2)
    assert is_k_colorable(classic.empty_graph(0), 0)


def test_list_coloring_search_finds_and_refutes():
    g = classic.cycle(4)
    solvable = ListAssignment({0: {1}, 1: {1, 2}, 2: {1}, 3: {1, 2}})
    result = list_coloring_search(g, solvable)
    assert result is not None
    verify_list_coloring(g, result, solvable)
    unsolvable = ListAssignment({0: {1}, 1: {1}, 2: {1}, 3: {1}})
    assert list_coloring_search(g, unsolvable) is None


def test_list_coloring_search_respects_partial():
    g = classic.path(3)
    lists = uniform_lists(g, 2)
    result = list_coloring_search(g, lists, partial={0: 1})
    assert result[0] == 1
    verify_list_coloring(g, result, lists)


def test_cycle_power_chromatic_numbers():
    """chi(C_n(1,2,3)) is 4 when 4 | n and 5 otherwise (n >= 13)."""
    assert chromatic_number(surfaces.cycle_power(16, 3), upper_bound=6) == 4
    assert chromatic_number(surfaces.cycle_power(13, 3), upper_bound=6) == 5


def test_klein_grid_is_4_chromatic():
    g = surfaces.klein_bottle_grid(5, 5)
    assert chromatic_number(g, upper_bound=6) == 4
    assert not is_k_colorable(g, 3)
