"""Tests for the scenario registry, the CLI and the artifact schema.

Every registered scenario must instantiate, run its smoke grid inline
(workers=1) to a schema-valid ``BENCH_<name>.json`` artifact, and keep its
name unique and aligned with the artifact filename — the contract the
``python -m repro`` CLI and the CI smoke job rely on.
"""

import json
import re

import pytest

from repro.cli import main as cli_main
from repro.scenarios import (
    CAMPAIGNS,
    ScenarioError,
    all_scenarios,
    get_scenario,
    run_scenario,
    scenario_names,
    validate_artifact,
)

NAMES = scenario_names()


def test_registry_has_all_paper_experiments():
    assert len(NAMES) >= 11
    # the two headline scenarios the README quickstart points at
    assert "theorem13-colors" in NAMES
    assert "primitives" in NAMES


def test_scenario_names_unique_and_kebab_case():
    assert len(NAMES) == len(set(NAMES))
    for name in NAMES:
        assert re.fullmatch(r"[a-z0-9]+(-[a-z0-9]+)*", name), name


def test_artifact_filenames_match_scenario_names(tmp_path):
    for scenario in all_scenarios():
        assert scenario.artifact_path().name == f"BENCH_{scenario.name}.json"
        assert scenario.artifact_path(tmp_path).name == f"BENCH_{scenario.name}.json"


def test_campaigns_reference_registered_scenarios():
    assert set(CAMPAIGNS["all"]) == set(NAMES)
    for campaign, members in CAMPAIGNS.items():
        assert members, campaign
        assert set(members) <= set(NAMES), campaign


@pytest.mark.parametrize("name", NAMES)
def test_scenario_smoke_runs_inline_to_valid_artifact(name, tmp_path):
    # verify=True replays the conformance oracle suite (schema, budgets,
    # variant parity, round envelopes) on the finished rows: every
    # registered scenario must pass it
    run = run_scenario(name, smoke=True, workers=1, out=tmp_path, verify=True)
    assert run.ok and run.failures == []
    assert run.path == tmp_path / f"BENCH_{name}.json"
    artifact = json.loads(run.path.read_text())
    assert validate_artifact(artifact, expected_name=name) == []
    assert artifact["metadata"]["scenario"]["paper_ref"] == get_scenario(name).paper_ref
    assert artifact["metadata"]["verify"] == {"enabled": True, "failures": []}
    assert len(artifact["rows"]) == len(run.runner.rows)
    # the exported artifact replays clean through the post-hoc suite too
    from repro.verify import artifact_failures

    assert artifact_failures(artifact, expected_name=name) == []


def test_smoke_run_is_deterministic(tmp_path):
    """Same base seed => bit-identical metrics, regardless of wall times."""
    runs = [
        run_scenario("theorem13-colors", smoke=True, workers=1, seed=3,
                     out=tmp_path / str(i))
        for i in range(2)
    ]
    metrics = [
        [
            # peak_rss_bytes is a process high-water mark (monotone within
            # one interpreter), so it legitimately differs between runs —
            # like wall times, it is excluded from the determinism claim
            {k: v for k, v in row.metrics.items() if k != "peak_rss_bytes"}
            for row in run.runner.rows
        ]
        for run in runs
    ]
    assert metrics[0] == metrics[1]


def test_profile_records_stage_seconds(tmp_path):
    run = run_scenario("theorem13-colors", smoke=True, workers=1, profile=True,
                       out=tmp_path)
    artifact = json.loads(run.path.read_text())
    assert validate_artifact(artifact, expected_name="theorem13-colors", profile=True) == []
    stages = artifact["rows"][0]["metrics"]["stage_seconds"]
    assert set(stages) == {"generate", "freeze", "solve", "verify"}
    assert all(isinstance(v, float) for v in stages.values())


def test_artifact_out_directory_need_not_exist(tmp_path):
    """`--out artifacts/` must mean a directory even before it exists."""
    run = run_scenario(
        "lowerbound-fisk", smoke=True, workers=1, out=tmp_path / "artifacts"
    )
    assert run.path == tmp_path / "artifacts" / "BENCH_lowerbound-fisk.json"
    assert run.path.exists()
    explicit = run_scenario(
        "lowerbound-fisk", smoke=True, workers=1,
        out=tmp_path / "custom-name.json",
    )
    assert explicit.path == tmp_path / "custom-name.json"


def test_cli_n_rejects_shape_mismatches(tmp_path, capsys):
    # (k, l)-pair grid: no --n mapping, must point at --set (not a traceback)
    assert cli_main(["run", "corollary211-genus", "--smoke", "--n", "36"]) == 2
    assert "--set" in capsys.readouterr().err
    # scalar size param: multiple values must not be silently dropped
    assert cli_main(["run", "corollary23-planar", "--smoke", "--n", "100,200"]) == 2
    assert "single value" in capsys.readouterr().err
    # non-integer values
    assert cli_main(["run", "theorem13-colors", "--smoke", "--n", "abc"]) == 2
    assert "comma-separated" in capsys.readouterr().err


def test_unknown_scenario_and_unknown_override_raise():
    with pytest.raises(ScenarioError, match="unknown scenario"):
        get_scenario("no-such-scenario")
    with pytest.raises(ScenarioError, match="no parameter"):
        run_scenario("theorem13-colors", overrides={"bogus": 1}, workers=1, export=False)


def test_validate_artifact_flags_broken_shapes():
    assert validate_artifact([]) != []
    assert any("schema_version" in p for p in validate_artifact({}))
    good = run_scenario("lowerbound-fisk", smoke=True, workers=1, export=False)
    artifact = good.runner.to_json_dict()
    assert validate_artifact(artifact, expected_name="lowerbound-fisk") == []
    broken = dict(artifact, rows=[{"instance": 1}])
    assert any("rows[0]" in p for p in validate_artifact(broken))
    assert any("!= expected" in p for p in validate_artifact(artifact, expected_name="other"))


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_list(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    for name in NAMES:
        assert name in out


def test_cli_list_json(capsys):
    assert cli_main(["list", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [s["name"] for s in payload["scenarios"]] == NAMES
    assert payload["campaigns"]["all"] == NAMES


def test_cli_run_smoke_writes_artifact(tmp_path, capsys):
    code = cli_main([
        "run", "theorem13-colors", "--smoke", "--workers", "1",
        "--out", str(tmp_path), "--profile",
    ])
    assert code == 0
    artifact = json.loads((tmp_path / "BENCH_theorem13-colors.json").read_text())
    assert validate_artifact(artifact, expected_name="theorem13-colors", profile=True) == []
    assert "wrote" in capsys.readouterr().out


def test_cli_run_unknown_scenario_errors(capsys):
    assert cli_main(["run", "nope"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_cli_campaign_smoke(tmp_path, capsys):
    code = cli_main([
        "campaign", "lowerbounds", "--smoke", "--workers", "1", "--out", str(tmp_path),
    ])
    assert code == 0
    merged = json.loads((tmp_path / "BENCH_campaign_lowerbounds.json").read_text())
    assert set(merged["scenarios"]) == {"lowerbound-fisk", "lowerbound-grids"}
    for name in merged["scenarios"]:
        assert (tmp_path / f"BENCH_{name}.json").exists()
        assert validate_artifact(merged["scenarios"][name], expected_name=name) == []
    summary = {entry["scenario"]: entry for entry in merged["summary"]}
    assert all(entry["check_failures"] == [] for entry in summary.values())


def test_cli_verify_passes_and_fails(tmp_path, capsys):
    # a clean artifact verifies; exit code 0 and a per-artifact "ok" line
    assert cli_main([
        "run", "lowerbound-fisk", "--smoke", "--workers", "1",
        "--out", str(tmp_path), "--quiet",
    ]) == 0
    path = tmp_path / "BENCH_lowerbound-fisk.json"
    capsys.readouterr()
    assert cli_main(["verify", str(path)]) == 0
    assert "ok" in capsys.readouterr().out

    # corrupt a row: the budget oracle must fail the run with exit code 1
    artifact = json.loads(path.read_text())
    artifact["rows"][0]["metrics"]["colors"] = 99
    artifact["rows"][0]["metrics"]["budget"] = 1
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text(json.dumps(artifact))
    assert cli_main(["verify", str(bad)]) == 1
    captured = capsys.readouterr()
    assert "FAIL" in captured.out
    assert "budget" in captured.err


def test_cli_verify_unpacks_campaign_merge(tmp_path, capsys):
    assert cli_main([
        "campaign", "lowerbounds", "--smoke", "--workers", "1",
        "--out", str(tmp_path),
    ]) == 0
    merged = tmp_path / "BENCH_campaign_lowerbounds.json"
    capsys.readouterr()
    assert cli_main(["verify", str(merged), "--quiet"]) == 0


def test_cli_verify_requires_input(capsys):
    assert cli_main(["verify"]) == 2
    assert "artifact paths" in capsys.readouterr().err


def test_cli_campaign_only_filter(tmp_path):
    assert cli_main([
        "campaign", "lowerbounds", "--smoke", "--workers", "1",
        "--out", str(tmp_path), "--only", "lowerbound-fisk",
    ]) == 0
    assert (tmp_path / "BENCH_lowerbound-fisk.json").exists()
    assert not (tmp_path / "BENCH_lowerbound-grids.json").exists()


def test_benchmark_shims_delegate_to_registry():
    """The old bench_* entry points still work, now as registry shims."""
    import importlib
    import sys
    from pathlib import Path

    bench_dir = str(Path(__file__).resolve().parent.parent / "benchmarks")
    sys.path.insert(0, bench_dir)
    try:
        module = importlib.import_module("bench_lowerbound_fisk")
        runner = module.build_table(cases=((29, 3),))
        assert runner.name == "lowerbound-fisk"
        assert runner.rows and runner.rows[0].metrics["colors_ruled_out"] == 4
    finally:
        sys.path.remove(bench_dir)
