"""Tests for the randomized track (:mod:`repro.distributed.randomized`).

Four layers of pinning:

* the counter-based RNG against numpy's own Philox-4x64-10 bit stream —
  the module's pure-python ladder and numpy's C implementation must emit
  the same words for the same ``(seed, node, round)`` key;
* engine parity properties (hypothesis over generator seeds) — the
  randomized (Delta+1)-coloring must replay bit-for-bit on the fused
  batched engine, the unfused reference, the flat per-node engine and
  the frozen seed engine, and the driver's batched/per-node paths must
  agree on colorings, rounds and frontier traces;
* Moser-Tardos backend parity — the flat (mask) and dict resamplers
  walk the identical resample sequence and emit the same record log and
  digest, and the result is a proper list coloring;
* oracle mutation tests — ``RandomizedRoundsOracle`` and
  ``ResampleLogOracle`` accept genuine witnesses and reject doctored
  ones (inflated rounds, growing frontiers, edited violated sets,
  truncated logs, swapped colorings, wrong seeds).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.coloring.palette import FlatListAssignment, ListAssignmentError
from repro.distributed.randomized import (
    KEY_SALT,
    BatchRandomizedDeltaPlusOne,
    RandomizedDeltaPlusOne,
    ResampleLimitError,
    ResampleStep,
    counter_rng,
    counter_rng_one,
    moser_tardos_list_coloring,
    philox4x64,
    randomized_delta_plus_one_coloring,
    resample_log_digest,
)
from repro.graphs.generators import classic, sparse
from repro.graphs.graph import Graph
from repro.local import Network, ReferenceSimulator, SynchronousSimulator
from repro.verify import (
    PaletteBudgetOracle,
    ProperColoringOracle,
    RandomizedRoundsOracle,
    ResampleLogOracle,
    assert_simulation_parity,
    coloring_digest,
)

seeds = st.integers(min_value=0, max_value=2**20)


# ---------------------------------------------------------------------------
# counter-based RNG: pin against numpy's Philox bit stream
# ---------------------------------------------------------------------------


@given(
    st.integers(min_value=0, max_value=2**64 - 1),
    st.integers(min_value=0, max_value=2**32),
    st.integers(min_value=1, max_value=2**20),
)
@settings(max_examples=50, deadline=None)
def test_counter_rng_matches_numpy_philox(seed, node, rnd):
    # numpy's Philox generator pre-increments the counter before its
    # first block, so counter=[rnd-1, node, 0, 0] yields the block our
    # ladder computes at counter=[rnd, node, 0, 0]
    bits = np.random.Philox(
        counter=[rnd - 1, node, 0, 0], key=[seed, KEY_SALT]
    ).random_raw(4)
    assert counter_rng_one(seed, node, rnd) == int(bits[0])


def test_counter_rng_vector_matches_scalar():
    nodes = np.arange(17, dtype=np.uint64)
    vector = counter_rng(12345, nodes, 7)
    for node in range(17):
        assert int(vector[node]) == counter_rng_one(12345, node, 7)


def test_philox_block_is_deterministic_and_key_sensitive():
    a = philox4x64(3, 5, 0, 0, 9, KEY_SALT)
    b = philox4x64(3, 5, 0, 0, 9, KEY_SALT)
    c = philox4x64(3, 5, 0, 0, 10, KEY_SALT)
    assert a == b
    assert a != c


# ---------------------------------------------------------------------------
# randomized (Delta+1): four-engine parity and driver parity
# ---------------------------------------------------------------------------


def _net_and_inputs(n, gseed, rseed):
    graph = sparse.union_of_random_forests(n, 2, seed=gseed).freeze()
    order = graph.vertices()
    random.Random(gseed).shuffle(order)
    net = Network(graph, identifier_order=order)
    delta = max(1, graph.max_degree())
    inputs = {v: (rseed, delta) for v in graph.vertices()}
    return graph, net, inputs


@given(seeds, seeds, st.integers(min_value=2, max_value=40))
@settings(max_examples=20, deadline=None)
def test_randomized_four_engine_parity(gseed, rseed, n):
    graph, net, inputs = _net_and_inputs(n, gseed, rseed)
    max_rounds = 48 * n.bit_length() + 96
    fused = SynchronousSimulator(net).run(
        BatchRandomizedDeltaPlusOne, inputs=inputs, max_rounds=max_rounds,
        strict=True,
    )
    unfused = SynchronousSimulator(net).run(
        BatchRandomizedDeltaPlusOne, inputs=inputs, max_rounds=max_rounds,
        strict=True, reference_exchange=True,
    )
    flat = SynchronousSimulator(net).run(
        RandomizedDeltaPlusOne, inputs=inputs, max_rounds=max_rounds,
        strict=True,
    )
    seed_result = ReferenceSimulator(net).run(
        RandomizedDeltaPlusOne, inputs=inputs, max_rounds=max_rounds,
        strict=True,
    )
    assert_simulation_parity(fused, unfused, labels=("fused", "reference"))
    assert_simulation_parity(fused, flat, labels=("fused", "per-node"))
    assert_simulation_parity(fused, seed_result, labels=("fused", "seed"))
    assert fused.per_round_messages == seed_result.per_round_messages
    coloring = dict(fused.outputs)
    assert coloring_digest(coloring) == coloring_digest(dict(flat.outputs))
    delta = max(1, graph.max_degree())
    ProperColoringOracle().check(graph=graph, coloring=coloring).raise_if_failed()
    PaletteBudgetOracle().check(
        coloring=coloring, budget=delta + 1
    ).raise_if_failed()


@given(seeds, seeds, st.integers(min_value=0, max_value=40))
@settings(max_examples=20, deadline=None)
def test_randomized_driver_parity(gseed, rseed, n):
    graph = sparse.union_of_random_forests(n, 2, seed=gseed).freeze()
    batched = randomized_delta_plus_one_coloring(graph, seed=rseed, batched=True)
    per_node = randomized_delta_plus_one_coloring(graph, seed=rseed, batched=False)
    assert batched.coloring == per_node.coloring
    assert batched.rounds == per_node.rounds
    assert batched.messages == per_node.messages
    assert batched.frontier == per_node.frontier
    assert batched.palette_size <= max(1, graph.max_degree()) + 1
    if n:
        ProperColoringOracle().check(
            graph=graph, coloring=batched.coloring
        ).raise_if_failed()


def test_randomized_seed_changes_coloring():
    graph = classic.complete_graph(12).freeze()
    a = randomized_delta_plus_one_coloring(graph, seed=1)
    b = randomized_delta_plus_one_coloring(graph, seed=2)
    assert a.coloring != b.coloring  # 12 clique vertices over 12 colors


def test_randomized_empty_graph():
    result = randomized_delta_plus_one_coloring(Graph().freeze(), seed=0)
    assert result.coloring == {}
    assert result.rounds == 0
    assert result.frontier == ()


def test_randomized_frontier_is_monotone_and_drains():
    graph = classic.random_regular_graph(80, 4, seed=5).freeze()
    result = randomized_delta_plus_one_coloring(graph, seed=9)
    assert len(result.frontier) == result.rounds
    assert result.frontier[0] == 80
    assert all(
        result.frontier[i] >= result.frontier[i + 1]
        for i in range(len(result.frontier) - 1)
    )
    assert result.frontier[-1] == 0
    RandomizedRoundsOracle().check(
        n=80, rounds=result.rounds, frontier=result.frontier
    ).raise_if_failed()


# ---------------------------------------------------------------------------
# Moser-Tardos: backend parity, legality, witness digests
# ---------------------------------------------------------------------------


def _mt_instance(n, gseed):
    graph = sparse.union_of_random_forests(n, 2, seed=gseed).freeze()
    delta = max(1, graph.max_degree())
    universe = 4 * delta + 4
    width = 2 * delta + 2
    lists = {
        v: [((i * 3 + j) % universe) + 1 for j in range(width)]
        for i, v in enumerate(graph.vertices())
    }
    return graph, lists


@given(seeds, seeds, st.integers(min_value=2, max_value=40))
@settings(max_examples=15, deadline=None)
def test_moser_tardos_backend_parity(gseed, rseed, n):
    graph, lists = _mt_instance(n, gseed)
    flat = moser_tardos_list_coloring(graph, lists, seed=rseed, backend="flat")
    dict_ = moser_tardos_list_coloring(graph, lists, seed=rseed, backend="dict")
    assert flat.coloring == dict_.coloring
    assert flat.steps == dict_.steps
    assert flat.log == dict_.log
    assert flat.log_digest() == dict_.log_digest()
    for v in graph.vertices():
        assert flat.coloring[v] in lists[v]
        for u in graph.neighbors(v):
            assert flat.coloring[u] != flat.coloring[v]


def test_moser_tardos_zero_vertices():
    result = moser_tardos_list_coloring(Graph().freeze(), {}, seed=0)
    assert result.coloring == {}
    assert result.steps == 0
    assert result.log == ()


def test_moser_tardos_rejects_empty_list():
    graph = classic.path(3).freeze()
    lists = {v: [1, 2, 3] for v in graph.vertices()}
    lists[graph.vertices()[1]] = []
    with pytest.raises(ListAssignmentError):
        moser_tardos_list_coloring(graph, lists, seed=0)


def test_moser_tardos_rejects_unknown_backend():
    with pytest.raises(ValueError):
        moser_tardos_list_coloring(Graph().freeze(), {}, seed=0, backend="gpu")


def test_moser_tardos_resample_limit():
    # a triangle with single-color lists can never become proper
    graph = classic.complete_graph(3).freeze()
    lists = {v: [1] for v in graph.vertices()}
    with pytest.raises(ResampleLimitError):
        moser_tardos_list_coloring(graph, lists, seed=0, max_steps=12)


def test_resample_log_digest_binds_seed_and_log():
    log = (ResampleStep(1, (0, 2)), ResampleStep(2, (1,)))
    base = resample_log_digest(log, seed=7)
    assert resample_log_digest(log, seed=8) != base
    assert resample_log_digest(log[:1], seed=7) != base
    assert resample_log_digest(log, seed=7) == base


# ---------------------------------------------------------------------------
# oracle mutation tests: each auditor rejects a doctored witness
# ---------------------------------------------------------------------------


def test_rounds_oracle_rejects_excessive_rounds():
    verdict = RandomizedRoundsOracle().check(n=64, rounds=10_000)
    assert verdict.failures


def test_rounds_oracle_rejects_growing_frontier():
    verdict = RandomizedRoundsOracle().check(
        n=4, rounds=3, frontier=[4, 2, 3]
    )
    assert any("grew" in d for d in verdict.diagnostics)


def test_rounds_oracle_rejects_undrained_frontier():
    verdict = RandomizedRoundsOracle().check(
        n=4, rounds=3, frontier=[4, 2, 1]
    )
    assert any("drained" in d for d in verdict.diagnostics)


def test_rounds_oracle_rejects_wrong_trace_length():
    verdict = RandomizedRoundsOracle().check(n=4, rounds=3, frontier=[4, 0])
    assert any("entries" in d for d in verdict.diagnostics)


def test_rounds_oracle_accepts_legal_trace():
    RandomizedRoundsOracle().check(
        n=4, rounds=3, frontier=[4, 2, 0]
    ).raise_if_failed()


@pytest.fixture()
def mt_witness():
    graph, lists = _mt_instance(24, 3)
    result = moser_tardos_list_coloring(graph, lists, seed=11, backend="flat")
    return graph, lists, result


def test_resample_oracle_accepts_genuine_witness(mt_witness):
    graph, lists, result = mt_witness
    ResampleLogOracle().check(
        graph=graph, lists=lists, seed=result.seed, log=result.log,
        coloring=result.coloring,
    ).raise_if_failed()


def test_resample_oracle_rejects_edited_violated_set(mt_witness):
    graph, lists, result = mt_witness
    doctored = list(result.log) or [ResampleStep(1, (0,))]
    doctored[0] = ResampleStep(
        doctored[0].step, tuple(v + 1 for v in doctored[0].vertices) or (1,)
    )
    verdict = ResampleLogOracle().check(
        graph=graph, lists=lists, seed=result.seed, log=doctored,
        coloring=result.coloring,
    )
    assert verdict.failures


def test_resample_oracle_rejects_padded_log(mt_witness):
    graph, lists, result = mt_witness
    padded = list(result.log) + [ResampleStep(result.steps + 1, (0, 1))]
    verdict = ResampleLogOracle().check(
        graph=graph, lists=lists, seed=result.seed, log=padded,
        coloring=result.coloring,
    )
    assert verdict.failures


def test_resample_oracle_rejects_swapped_coloring(mt_witness):
    graph, lists, result = mt_witness
    forged = dict(result.coloring)
    v = graph.vertices()[0]
    forged[v] = next(c for c in lists[v] if c != forged[v])
    verdict = ResampleLogOracle().check(
        graph=graph, lists=lists, seed=result.seed, log=result.log,
        coloring=forged,
    )
    assert verdict.failures


def test_resample_oracle_rejects_wrong_seed(mt_witness):
    graph, lists, result = mt_witness
    other = moser_tardos_list_coloring(
        graph, lists, seed=result.seed + 1, backend="flat"
    )
    if other.log == result.log and other.coloring == result.coloring:
        pytest.skip("adjacent seeds happened to replay identically")
    verdict = ResampleLogOracle().check(
        graph=graph, lists=lists, seed=result.seed + 1, log=result.log,
        coloring=result.coloring,
    )
    assert verdict.failures


def test_resample_oracle_rejects_monochromatic_forgery():
    # a forged witness whose replay is consistent but whose coloring has
    # a monochromatic edge must fall to the independent legality check
    graph = classic.path(2).freeze()
    u, v = graph.vertices()
    lists = {u: [1, 2], v: [1, 2]}
    result = moser_tardos_list_coloring(graph, lists, seed=4, backend="dict")
    forged = {u: result.coloring[u], v: result.coloring[u]}
    verdict = ResampleLogOracle().check(
        graph=graph, lists=lists, seed=4, log=result.log, coloring=forged,
    )
    assert verdict.failures


# ---------------------------------------------------------------------------
# palette edge cases promoted by the randomized track (satellite #3)
# ---------------------------------------------------------------------------


def test_minimum_size_default_on_empty_assignment():
    empty = FlatListAssignment({})
    assert empty.minimum_size() == 0
    assert empty.minimum_size(default=5) == 5


def test_moser_tardos_ignores_foreign_empty_lists():
    # an empty list attached to a vertex outside the graph must not trip
    # the precondition (the restriction to graph vertices is what counts)
    graph = classic.path(3).freeze()
    lists = {v: [1, 2, 3] for v in graph.vertices()}
    lists["ghost"] = []
    result = moser_tardos_list_coloring(graph, lists, seed=0)
    assert set(result.coloring) == set(graph.vertices())
