"""End-to-end and fault-path tests of the coloring service.

Three layers of harness:

* a **real server subprocess** (module fixture: ``python -m repro serve
  --port 0 --fault-injection``, port parsed from its boot line) driven by
  concurrent asyncio clients — every served coloring is re-checked
  *client-side* against the PR-5 oracles on an independently rebuilt
  graph, and a hypothesis property pins cache consistency (same digest +
  params ⇒ bit-identical ``coloring_digest`` whether hit, miss or
  coalesced, under interleaved concurrent requests);
* an **in-process service** with tiny caps for the fault paths: malformed
  edge lists, unknown digests, oversized uploads and over-long request
  lines must produce structured errors while the event loop keeps serving;
* **direct executor tests** for the worker-crash degradation: a batch
  whose worker dies mid-request comes back as retried/failed payloads,
  never an exception and never a hang.

No test may hang: every await is bounded by ``asyncio.wait_for`` (the
repo has no pytest-timeout plugin).
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import threading
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.corpus import STANDARD_INSTANCES, default_corpus, graph_digest
from repro.serve import (
    ColoringService,
    ServeClient,
    ServeConfig,
    ServeDeadlineError,
    ServeResponseError,
)
from repro.serve.batching import MicroBatcher
from repro.serve.cache import ResultCache
from repro.serve.executor import JobSpec, compute_job, execute_jobs
from repro.serve.loadgen import _percentile
from repro.serve.protocol import ServeError, canonical_params, encode_line
from repro.verify.coloring import PaletteBudgetOracle, ProperColoringOracle

pytestmark = pytest.mark.serve

REPO_ROOT = Path(__file__).resolve().parent.parent
TEST_TIMEOUT = 90.0  # outer bound for any single awaited interaction


def run_async(coro, timeout: float = TEST_TIMEOUT):
    """Drive a coroutine on a fresh loop with a hard deadline (no hangs)."""
    return asyncio.run(asyncio.wait_for(coro, timeout))


# ---------------------------------------------------------------------------
# the real-server fixture (subprocess, ephemeral port, fault injection on)
# ---------------------------------------------------------------------------

def _read_boot_line(proc: subprocess.Popen, timeout: float = 60.0) -> str:
    """The server's ``listening on`` line, or kill it and fail loudly."""
    result: dict[str, str] = {}

    def target() -> None:
        result["line"] = proc.stdout.readline()

    reader = threading.Thread(target=target, daemon=True)
    reader.start()
    reader.join(timeout)
    line = result.get("line", "")
    if "listening on" not in line:
        proc.kill()
        raise RuntimeError(f"server failed to boot (got {line!r})")
    return line.strip()


@pytest.fixture(scope="module")
def live_server():
    """``(host, port)`` of a real ``python -m repro serve`` subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--fault-injection", "--batch-window-ms", "1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    try:
        line = _read_boot_line(proc)
        address = line.rsplit(" ", 1)[-1]
        host, port = address.rsplit(":", 1)
        yield host, int(port)
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=15)


# ---------------------------------------------------------------------------
# client-side oracle gate: rebuild the graph, remap labels, re-verify
# ---------------------------------------------------------------------------

_GRAPHS = {
    name: default_corpus().frozen(spec) for name, spec in STANDARD_INSTANCES.items()
}
_DIGESTS = {name: graph_digest(g) for name, g in _GRAPHS.items()}
_BY_DIGEST = {digest: name for name, digest in _DIGESTS.items()}


def _decode_coloring(graph, pairs):
    """Invert the wire form (``[[repr(v), color], ...]``) against the graph."""
    by_repr = {repr(v): v for v in graph.vertices()}
    coloring = {}
    for encoded, color in pairs:
        assert encoded in by_repr, f"served vertex {encoded!r} is not in the graph"
        coloring[by_repr[encoded]] = color
    return coloring


def _assert_response_legal(response):
    """The e2e oracle gate: independent proper-coloring + budget re-check."""
    graph = _GRAPHS[_BY_DIGEST[response["graph_digest"]]]
    coloring = _decode_coloring(graph, response["coloring"])
    proper = ProperColoringOracle().check(graph=graph, coloring=coloring)
    assert proper.ok, proper.diagnostics
    budget = PaletteBudgetOracle().check(coloring=coloring, budget=response["budget"])
    assert budget.ok, budget.diagnostics
    assert response["valid"] is True
    assert all(v["ok"] for v in response["verdicts"])


# ---------------------------------------------------------------------------
# end-to-end: concurrent clients against the real server
# ---------------------------------------------------------------------------

_E2E_REQUESTS = [
    ("planar-tri-60-s3", "greedy", {}),
    ("planar-tri-60-s3", "theorem13", {}),
    ("grid-6x10", "greedy", {}),
    ("grid-6x10", "delta-plus-one", {}),
    ("bounded-mad-64-k2-s5", "theorem13", {}),
    ("forest-union-80-a2-s1", "greedy", {}),
    ("torus-6x8", "greedy", {}),  # tuple vertex labels: the local-handle path
    ("path-33", "delta-plus-one", {}),
    ("regular-40-d4-s7", "theorem13", {"d": 5}),
    ("single-vertex", "greedy", {}),
]


def test_e2e_concurrent_clients_all_responses_pass_oracles(live_server):
    host, port = live_server

    async def one_client(requests):
        responses = []
        async with ServeClient(host, port) as client:
            for name, algorithm, params in requests:
                responses.append(
                    await client.color(_DIGESTS[name], algorithm, params=params)
                )
        return responses

    async def fan_out():
        # 6 concurrent clients, interleaved schedules (offset rotations so
        # identical keys race each other across connections)
        schedules = [
            _E2E_REQUESTS[i:] + _E2E_REQUESTS[:i] for i in range(6)
        ]
        return await asyncio.gather(*(one_client(s) for s in schedules))

    all_responses = run_async(fan_out())
    digests_by_key = {}
    for responses in all_responses:
        assert len(responses) == len(_E2E_REQUESTS)
        for response in responses:
            _assert_response_legal(response)
            key = (
                response["graph_digest"],
                response["algorithm"],
                repr(canonical_params(response["params"])),
            )
            seen = digests_by_key.setdefault(key, response["coloring_digest"])
            # hit, miss and coalesced paths must agree bit-for-bit
            assert seen == response["coloring_digest"]
    # across 6 rotated schedules every key repeated: some must have been hits
    assert any(r["cached"] for responses in all_responses for r in responses)


def test_e2e_stats_and_instances_round_trip(live_server):
    host, port = live_server

    async def body():
        async with ServeClient(host, port) as client:
            instances = await client.instances()
            stats = await client.stats()
            return instances, stats

    instances, stats = run_async(body())
    listed = {row["instance"] for row in instances}
    assert set(STANDARD_INSTANCES) <= listed
    assert stats["cache"]["max_bytes"] > 0
    assert stats["requests"] >= 1


# ---------------------------------------------------------------------------
# hypothesis: cache consistency under interleaved concurrent requests
# ---------------------------------------------------------------------------

_KEY_STRATEGY = st.sampled_from(
    [
        ("planar-tri-60-s3", "greedy"),
        ("grid-6x10", "greedy"),
        ("bounded-mad-64-k2-s5", "greedy"),
        ("path-33", "delta-plus-one"),
        ("forest-union-80-a2-s1", "theorem13"),
    ]
)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(batch=st.lists(_KEY_STRATEGY, min_size=2, max_size=8))
def test_cache_consistency_property(live_server, batch):
    """Same digest + params ⇒ bit-identical coloring_digest, hit or miss.

    Each drawn batch fires concurrently over two connections (so repeats
    of one key interleave as coalesced joins, cache hits and misses in
    unpredictable order) and then once more sequentially — every response
    for a key must carry the same coloring_digest.
    """
    host, port = live_server

    async def fire():
        async with ServeClient(host, port) as a, ServeClient(host, port) as b:
            concurrent = await asyncio.gather(
                *(
                    (a if i % 2 else b).color(_DIGESTS[name], algorithm)
                    for i, (name, algorithm) in enumerate(batch)
                )
            )
            sequential = [
                await a.color(_DIGESTS[name], algorithm) for name, algorithm in batch
            ]
        return concurrent + sequential

    responses = run_async(fire())
    by_key = {}
    for response in responses:
        assert response["valid"] is True
        key = (response["graph_digest"], response["algorithm"])
        by_key.setdefault(key, set()).add(response["coloring_digest"])
    for key, digests in by_key.items():
        assert len(digests) == 1, f"{key} served {len(digests)} distinct colorings"


# ---------------------------------------------------------------------------
# fault paths: structured errors, surviving event loop (in-process service)
# ---------------------------------------------------------------------------

@pytest.fixture()
def small_service():
    """A config for an in-process service with tiny caps (10 edges, 4 KiB frames)."""
    return ServeConfig(
        port=0,
        max_upload_edges=10,
        max_request_bytes=4096,
        batch_window_ms=1.0,
        fault_injection=True,
    )


async def _with_service(config, body):
    service = ColoringService(config)
    host, port = await service.start()
    server_task = asyncio.ensure_future(service.serve_forever())
    try:
        return await body(service, host, port)
    finally:
        await service.shutdown()
        try:
            await asyncio.wait_for(server_task, timeout=10)
        except asyncio.TimeoutError:
            server_task.cancel()


def test_malformed_and_unknown_requests_return_structured_errors(small_service):
    async def body(service, host, port):
        async with ServeClient(host, port) as client:
            # malformed edge list shapes
            for bad_edges in ([[0]], [[0, "x"]], ["nope"], [[0, 99]], 7):
                response = await client.request(
                    {"op": "upload", "n": 5, "edges": bad_edges}, check=False
                )
                assert response["ok"] is False
                assert response["error"]["code"] == "bad-request", response
            # unknown digest / op / algorithm
            response = await client.request(
                {"op": "color", "graph_digest": "feedfacefeedface"}, check=False
            )
            assert response["error"]["code"] == "unknown-digest"
            response = await client.request({"op": "recolor"}, check=False)
            assert response["error"]["code"] == "unknown-op"
            response = await client.request(
                {"op": "color", "graph_digest": _DIGESTS["path-33"],
                 "algorithm": "quantum"},
                check=False,
            )
            assert response["error"]["code"] == "unknown-algorithm"
            # bad params shapes
            response = await client.request(
                {"op": "color", "graph_digest": _DIGESTS["path-33"],
                 "algorithm": "theorem13", "params": {"d": [1, 2]}},
                check=False,
            )
            assert response["error"]["code"] == "bad-request"
            # ... and the connection still serves good requests afterwards
            good = await client.color(_DIGESTS["path-33"], "greedy")
            assert good["valid"] is True
        return True

    assert run_async(_with_service(small_service, body))


def test_oversized_upload_and_frame_are_rejected_not_fatal(small_service):
    async def body(service, host, port):
        async with ServeClient(host, port) as client:
            # over the 10-edge upload cap: rejected cheaply, connection lives
            edges = [[i, i + 1] for i in range(11)]
            response = await client.request(
                {"op": "upload", "n": 12, "edges": edges}, check=False
            )
            assert response["error"]["code"] == "too-large"
            assert (await client.ping())["pong"] is True
        # a frame longer than max_request_bytes: answered, then hung up
        # (framing is unrecoverable) — but the *server* keeps accepting
        async with ServeClient(host, port) as client:
            with pytest.raises((ServeResponseError, ConnectionError)):
                await client.request({"op": "ping", "pad": "x" * 8192})
        async with ServeClient(host, port) as client:
            assert (await client.ping())["pong"] is True
        return True

    assert run_async(_with_service(small_service, body))


def test_injected_crash_degrades_to_failed_response_not_hang(small_service):
    async def body(service, host, port):
        async with ServeClient(host, port) as client:
            response = await asyncio.wait_for(
                client.color(_DIGESTS["path-33"], "crash", check=False), timeout=30
            )
            assert response["ok"] is False
            assert response["error"]["code"] == "compute-failed"
            # the loop survived; the same connection serves real work
            good = await client.color(_DIGESTS["path-33"], "greedy")
            assert good["valid"] is True
        return True

    assert run_async(_with_service(small_service, body))


def test_crash_algorithm_is_rejected_without_fault_injection():
    config = ServeConfig(port=0, fault_injection=False)

    async def body(service, host, port):
        async with ServeClient(host, port) as client:
            response = await client.request(
                {"op": "color", "graph_digest": _DIGESTS["path-33"],
                 "algorithm": "crash"},
                check=False,
            )
            assert response["error"]["code"] == "unknown-algorithm"
        return True

    assert run_async(_with_service(config, body))


def test_clique_dichotomy_surfaces_as_structured_error(small_service):
    # k-tree-48-k3-s2 contains 4-cliques: theorem13 with d=3 must answer
    # clique-found, not crash and not a bogus coloring; and the theorem's
    # d >= 3 precondition must come back as bad-request, not compute-failed
    async def body(service, host, port):
        async with ServeClient(host, port) as client:
            response = await client.color(
                _DIGESTS["k-tree-48-k3-s2"], "theorem13",
                params={"d": 3}, check=False,
            )
            assert response["ok"] is False
            assert response["error"]["code"] == "clique-found"
            response = await client.color(
                _DIGESTS["k-tree-48-k3-s2"], "theorem13",
                params={"d": 2}, check=False,
            )
            assert response["error"]["code"] == "bad-request"
            assert (await client.ping())["pong"] is True
        return True

    assert run_async(_with_service(small_service, body))


# ---------------------------------------------------------------------------
# client retry: backoff through drops/drains, bounded attempts, deadlines
# ---------------------------------------------------------------------------

async def _flaky_server(behaviour):
    """An asyncio server whose per-connection behaviour a test scripts.

    ``behaviour(connection_index, reader, writer)`` decides what each
    accepted connection does; returns ``(server, host, port, counter)``.
    """
    counter = {"connections": 0}

    async def handler(reader, writer):
        counter["connections"] += 1
        try:
            await behaviour(counter["connections"], reader, writer)
        finally:
            writer.close()

    server = await asyncio.start_server(handler, "127.0.0.1", 0)
    host, port = server.sockets[0].getsockname()[:2]
    return server, host, port, counter


def test_client_retries_through_draining_connections():
    # the first two connections hang up after reading the request — the
    # shape a draining/restarting server presents — the third one answers
    async def behaviour(index, reader, writer):
        await reader.readline()
        if index <= 2:
            return  # close without answering: client sees EOF
        writer.write(encode_line({"ok": True, "pong": True}))
        await writer.drain()

    async def body():
        server, host, port, counter = await _flaky_server(behaviour)
        try:
            client = ServeClient(
                host, port, retries=3, backoff_base=0.01, jitter_seed=7
            )
            response = await client.ping()
            assert response["pong"] is True
            assert counter["connections"] == 3
            await client.aclose()
        finally:
            server.close()
            await server.wait_closed()
        return True

    assert run_async(body())


def test_client_retry_budget_is_bounded():
    # a server that always drains: the client must give up after exactly
    # retries + 1 attempts with a ConnectionError, not loop forever
    async def behaviour(index, reader, writer):
        await reader.readline()

    async def body():
        server, host, port, counter = await _flaky_server(behaviour)
        try:
            client = ServeClient(
                host, port, retries=2, backoff_base=0.01, jitter_seed=11
            )
            with pytest.raises(ConnectionError):
                await client.ping()
            assert counter["connections"] == 3
            await client.aclose()
        finally:
            server.close()
            await server.wait_closed()
        return True

    assert run_async(body())


def test_client_deadline_bounds_an_unresponsive_server():
    # the server accepts and never answers; the per-request deadline must
    # cut the exchange (and any backoff sleeps) with ServeDeadlineError
    async def behaviour(index, reader, writer):
        await reader.readline()
        await asyncio.sleep(60)

    async def body():
        server, host, port, _counter = await _flaky_server(behaviour)
        try:
            client = ServeClient(
                host, port, retries=5, backoff_base=0.05,
                deadline=0.4, jitter_seed=3,
            )
            loop = asyncio.get_running_loop()
            start = loop.time()
            with pytest.raises(ServeDeadlineError):
                await client.ping()
            assert loop.time() - start < 10.0
            await client.aclose()
        finally:
            server.close()
            await server.wait_closed()
        return True

    assert run_async(body())


def test_client_retry_covers_real_server_drain(small_service):
    # against the real in-process service: shutdown answers, then drains;
    # the retried follow-up surfaces a bounded structured failure, no hang
    async def body(service, host, port):
        client = ServeClient(
            host, port, retries=2, backoff_base=0.01,
            deadline=15.0, jitter_seed=5,
        )
        assert (await client.ping())["pong"] is True
        response = await client.shutdown()
        assert response["ok"] is True
        # the shutdown op responds before tripping the event (call_soon),
        # so one more request may slip through the race — poll until the
        # drain takes effect, then the retried request must fail bounded
        with pytest.raises((ConnectionError, ServeDeadlineError)):
            for _ in range(100):
                await client.request({"op": "ping"})
                await asyncio.sleep(0.02)
            raise AssertionError("server never drained")
        await client.aclose()
        return True

    assert run_async(_with_service(small_service, body))


# ---------------------------------------------------------------------------
# worker-crash degradation in the executor itself (real process pool)
# ---------------------------------------------------------------------------

def test_pool_worker_death_degrades_batch_to_inline_retry():
    from repro.analysis import shared
    from repro.graphs.generators import streaming

    try:
        graph = streaming.stream_degenerate_graph(300, 2, seed=5)
    except Exception:
        pytest.skip("streaming generators need numpy")
    handle = shared.publish(graph)
    if handle.kind != "shm":
        shared.release(handle.digest)
        pytest.skip("shared memory unavailable in this sandbox")
    try:
        try:
            with ProcessPoolExecutor(max_workers=2) as pool:
                pool.submit(int, 1).result(timeout=30)
        except (OSError, BrokenExecutor, ImportError):
            pytest.skip("sandbox cannot fork a process pool")
        specs = [
            JobSpec(handle, "greedy", {}),
            JobSpec(handle, "crash", {}),  # os._exit(1) inside a pool worker
            JobSpec(handle, "greedy", {}),
        ]
        payloads = execute_jobs(specs, workers=2)
        assert len(payloads) == 3
        # the crash slot failed structurally; the siblings were retried inline
        assert payloads[1]["error"]["code"] == "compute-failed"
        for payload in (payloads[0], payloads[2]):
            assert payload.get("error") is None, payload
            assert payload["valid"] is True
        assert payloads[0]["coloring_digest"] == payloads[2]["coloring_digest"]
        # degradation keeps digest consistency: the inline-retried payloads
        # are bit-identical to a healthy (pool-free) run of the same jobs
        healthy = compute_job(handle, "greedy", {})
        assert payloads[0]["coloring_digest"] == healthy["coloring_digest"]
        assert payloads[0]["graph_digest"] == healthy["graph_digest"] == handle.digest
        # ... and a crash-free pooled batch over the same shm handle agrees
        clean = execute_jobs(
            [JobSpec(handle, "greedy", {}), JobSpec(handle, "greedy", {})],
            workers=2,
        )
        assert all(p.get("error") is None for p in clean), clean
        assert {p["coloring_digest"] for p in clean} == {healthy["coloring_digest"]}
    finally:
        shared.release(handle.digest)


def test_compute_job_self_verifies_and_reports_domain_errors():
    from repro.analysis import shared

    graph = _GRAPHS["planar-tri-60-s3"]
    handle = shared.local_handle(graph)
    try:
        payload = compute_job(handle, "greedy", {})
        assert payload["valid"] is True
        assert payload["colors"] <= payload["budget"]
        assert {v["oracle"] for v in payload["verdicts"]} == {
            "proper-coloring", "palette-budget",
        }
        # the wire coloring decodes back to a proper coloring
        coloring = _decode_coloring(graph, payload["coloring"])
        assert ProperColoringOracle().check(graph=graph, coloring=coloring).ok
        unknown = compute_job(handle, "nope", {})
        assert unknown["error"]["code"] == "unknown-algorithm"
    finally:
        shared.release(handle.digest)


# ---------------------------------------------------------------------------
# result cache unit behavior (byte cap, LRU, stats)
# ---------------------------------------------------------------------------

def test_result_cache_byte_cap_evicts_lru():
    cache = ResultCache(max_bytes=300)
    big = {"coloring": "x" * 100}
    cache.put("a", big)
    cache.put("b", big)
    assert cache.get("a") is not None  # a is now most-recent
    cache.put("c", big)  # over cap: evicts b (LRU), not a
    assert cache.get("b") is None
    assert cache.get("a") is not None
    assert cache.get("c") is not None
    stats = cache.stats()
    assert stats["evictions"] >= 1
    assert stats["bytes"] <= 300
    # an entry bigger than the whole cap is simply not stored
    cache.put("huge", {"coloring": "x" * 1000})
    assert cache.get("huge") is None


def test_canonical_params_rejects_non_scalars_and_sorts_keys():
    assert canonical_params(None) == {}
    assert list(canonical_params({"b": 1, "a": 2})) == ["a", "b"]
    with pytest.raises(ServeError):
        canonical_params({"d": [1]})
    with pytest.raises(ServeError):
        canonical_params("d=3")


# ---------------------------------------------------------------------------
# micro-batcher failure semantics: a raising executor must reject, not hang
# ---------------------------------------------------------------------------

class _Boom(RuntimeError):
    pass


def _lazily_raising_executor(specs, workers=1):
    """A generator whose first ``next()`` raises — the shape that used to
    slip past the old ``try`` (the exception fired while *zipping* the
    results to futures, after the guard) and hang every waiter."""
    def gen():
        raise _Boom("pool fell over")
        yield  # pragma: no cover - unreachable, makes this a generator
    return gen()


def _short_executor(specs, workers=1):
    return [{"ok": True}]  # one payload, regardless of batch size


def _dummy_spec() -> JobSpec:
    return JobSpec(handle=None, algorithm="greedy", params={})


def test_microbatcher_raising_executor_rejects_both_waiters():
    async def scenario():
        batcher = MicroBatcher(
            window_seconds=0.001, max_batch=8, execute=_lazily_raising_executor
        )
        a = asyncio.ensure_future(batcher.submit("key-a", _dummy_spec()))
        b = asyncio.ensure_future(batcher.submit("key-b", _dummy_spec()))
        results = await asyncio.gather(a, b, return_exceptions=True)
        assert all(isinstance(r, _Boom) for r in results)
        # every key evicted: the next submit retries instead of awaiting
        # the dead future of the failed batch
        assert batcher._pending == {}

    run_async(scenario(), timeout=10.0)


def test_microbatcher_short_payload_list_rejects_whole_batch():
    async def scenario():
        batcher = MicroBatcher(
            window_seconds=0.001, max_batch=8, execute=_short_executor
        )
        a = asyncio.ensure_future(batcher.submit("key-a", _dummy_spec()))
        b = asyncio.ensure_future(batcher.submit("key-b", _dummy_spec()))
        results = await asyncio.gather(a, b, return_exceptions=True)
        assert all(isinstance(r, RuntimeError) for r in results)
        assert all("payload" in str(r) for r in results)
        assert batcher._pending == {}

    run_async(scenario(), timeout=10.0)


def test_microbatcher_recovers_after_failed_batch():
    calls = []

    def flaky(specs, workers=1):
        calls.append(len(specs))
        if len(calls) == 1:
            raise _Boom("first batch dies")
        return [{"ok": True} for _ in specs]

    async def scenario():
        batcher = MicroBatcher(window_seconds=0.0, max_batch=1, execute=flaky)
        with pytest.raises(_Boom):
            await batcher.submit("key", _dummy_spec())
        payload = await batcher.submit("key", _dummy_spec())
        assert payload == {"ok": True}
        assert calls == [1, 1]

    run_async(scenario(), timeout=10.0)


# ---------------------------------------------------------------------------
# loadgen percentile convention (linear interpolation, numpy's default)
# ---------------------------------------------------------------------------

def test_percentile_pins_linear_interpolation():
    assert _percentile([1.0, 2.0, 3.0, 4.0], 0.50) == pytest.approx(2.5)
    decade = [float(i) for i in range(1, 11)]
    assert _percentile(decade, 0.95) == pytest.approx(9.55)
    assert _percentile(decade, 0.99) == pytest.approx(9.91)
    assert _percentile(decade, 0.0) == pytest.approx(1.0)
    assert _percentile(decade, 1.0) == pytest.approx(10.0)


def test_percentile_edge_cases_do_not_raise():
    assert _percentile([], 0.5) == 0.0
    assert _percentile([7.25], 0.99) == 7.25
    # out-of-range q clamps instead of indexing out of bounds
    assert _percentile([1.0, 2.0], 1.5) == 2.0
    assert _percentile([1.0, 2.0], -0.5) == 1.0
