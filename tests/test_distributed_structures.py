"""Tests for ruling forests, H-partitions, Barenboim–Elkin and GPS baselines."""

import pytest

from repro.coloring.verification import verify_coloring
from repro.errors import ColoringError, SimulationError
from repro.graphs.generators import classic, planar, sparse
from repro.distributed import (
    barenboim_elkin_coloring,
    gps_coloring,
    h_partition,
    orientation_from_partition,
    peel_low_degree_layers,
    ruling_forest,
    ruling_set,
)


# -- ruling sets / forests -------------------------------------------------------

def test_ruling_set_separation_and_domination():
    g = classic.grid_2d(8, 8)
    subset = set(g.vertices())
    alpha = 3
    ruling, rounds = ruling_set(g, subset, alpha)
    assert ruling
    assert rounds > 0
    # pairwise distance >= alpha
    for r in ruling:
        dist = g.bfs_distances(r, radius=alpha - 1)
        assert all(other not in dist for other in ruling if other != r)


def test_ruling_set_empty_subset():
    g = classic.cycle(5)
    ruling, rounds = ruling_set(g, set(), 2)
    assert ruling == set()
    assert rounds == 0


@pytest.mark.parametrize("alpha", [2, 4, 7])
def test_ruling_forest_invariants(alpha):
    g = planar.delaunay_triangulation(80, seed=1)
    subset = {v for v in g if g.degree(v) <= 6}
    forest = ruling_forest(g, subset, alpha)
    # (1) every subset vertex is in some tree
    assert subset <= forest.vertices()
    # (2) roots pairwise at distance >= alpha
    for r in forest.roots:
        dist = g.bfs_distances(r, radius=alpha - 1)
        assert all(other not in dist for other in forest.roots if other != r)
    # (3) depth bounded by beta and parent pointers consistent
    for v, parent in forest.parent.items():
        if parent is None:
            assert forest.depth[v] == 0
            assert v in forest.roots
        else:
            assert g.has_edge(v, parent)
            assert forest.depth[v] == forest.depth[parent] + 1
            assert forest.tree_of[v] == forest.tree_of[parent]
        assert forest.depth[v] <= forest.beta
    # trees are vertex-disjoint by construction (parent map is a function)
    members = forest.tree_members()
    assert sum(len(m) for m in members.values()) + 0 == len(forest.tree_of) - 0 >= len(subset)


def test_ruling_forest_on_disconnected_graph():
    g = classic.random_tree(20, seed=2)
    other = classic.random_tree(10, seed=3).relabeled({i: ("b", i) for i in range(10)})
    for v in other.vertices():
        g.add_vertex(v)
    for u, v in other.edges():
        g.add_edge(u, v)
    subset = set(g.vertices())
    forest = ruling_forest(g, subset, 3)
    assert subset <= forest.vertices()
    # at least one root per connected component
    roots_components = {
        frozenset(g.subgraph(g.ball(r, len(g))).vertices()) for r in forest.roots
    }
    assert len(roots_components) == 2


# -- H-partition -----------------------------------------------------------------

def test_h_partition_degree_bound():
    g = sparse.union_of_random_forests(100, 2, seed=4)
    partition = h_partition(g, arboricity=2, epsilon=1.0)
    bound = partition.degree_bound
    for i, cls in enumerate(partition.classes):
        later = set().union(*partition.classes[i:])
        for v in cls:
            assert sum(1 for u in g.neighbors(v) if u in later) <= bound
    assert partition.number_of_classes >= 1
    assert sum(len(c) for c in partition.classes) == g.number_of_vertices()


def test_h_partition_underestimated_arboricity_raises():
    g = classic.complete_graph(12)  # arboricity 6
    with pytest.raises(SimulationError):
        h_partition(g, arboricity=1, epsilon=0.5)


def test_h_partition_number_of_classes_logarithmic():
    g = sparse.union_of_random_forests(400, 2, seed=5)
    partition = h_partition(g, arboricity=2, epsilon=1.0)
    assert partition.number_of_classes <= 30  # O(log n) with a generous constant


def test_orientation_from_partition_out_degree():
    g = sparse.union_of_random_forests(80, 3, seed=6)
    partition = h_partition(g, arboricity=3, epsilon=1.0)
    out = orientation_from_partition(g, partition)
    assert max(len(v) for v in out.values()) <= partition.degree_bound
    assert sum(len(v) for v in out.values()) == g.number_of_edges()


# -- Barenboim–Elkin ----------------------------------------------------------------

@pytest.mark.parametrize("a", [2, 3])
def test_barenboim_elkin_coloring(a):
    g = sparse.union_of_random_forests(80, a, seed=7)
    result = barenboim_elkin_coloring(g, arboricity=a, epsilon=1.0)
    verify_coloring(g, result.coloring)
    assert result.colors_used <= result.palette_size == 3 * a + 1
    assert result.rounds > 0


def test_barenboim_elkin_uses_more_colors_than_2a_palette():
    """The baseline's palette exceeds 2a — the gap Corollary 1.4 closes."""
    a = 2
    g = sparse.union_of_random_forests(60, a, seed=8)
    result = barenboim_elkin_coloring(g, arboricity=a, epsilon=1.0)
    assert result.palette_size > 2 * a


def test_barenboim_elkin_empty():
    from repro.graphs import Graph

    assert barenboim_elkin_coloring(Graph(), 2).coloring == {}


# -- GPS -----------------------------------------------------------------------------

def test_peel_low_degree_layers_planar():
    g = planar.delaunay_triangulation(100, seed=9)
    layers, ledger = peel_low_degree_layers(g, 6)
    assert sum(len(layer) for layer in layers) == 100
    assert ledger.total() == len(layers)
    # planar graphs lose a constant fraction per layer -> few layers
    assert len(layers) <= 20


def test_peel_low_degree_layers_stall():
    g = classic.complete_graph(9)
    with pytest.raises(ColoringError):
        peel_low_degree_layers(g, 6)


@pytest.mark.parametrize("seed", [0, 1])
def test_gps_seven_coloring_planar(seed):
    g = planar.stacked_triangulation(80, seed=seed)
    result = gps_coloring(g, degree_threshold=6)
    verify_coloring(g, result.coloring)
    assert result.colors_used <= 7
    assert result.palette_size == 7


def test_gps_on_trees_with_threshold_1():
    t = classic.random_tree(50, seed=10)
    result = gps_coloring(t, degree_threshold=1)
    verify_coloring(t, result.coloring)
    assert result.colors_used <= 2


def test_gps_empty():
    from repro.graphs import Graph

    assert gps_coloring(Graph()).coloring == {}
