"""Tests for planar, sparse and surface graph generators."""

import pytest

from repro.errors import GeneratorError
from repro.graphs.generators import planar, sparse, surfaces
from repro.graphs.properties.girth import girth, has_triangle
from repro.graphs.properties.mad import maximum_average_degree
from repro.graphs.properties.planarity import is_planar


# ---------------------------------------------------------------------------
# planar generators
# ---------------------------------------------------------------------------

def test_wheel_planar():
    g = planar.wheel(6)
    assert is_planar(g)
    assert g.degree("hub") == 6


@pytest.mark.parametrize("n", [3, 10, 40])
def test_apollonian_is_maximal_planar(n):
    g = planar.stacked_triangulation(n, seed=1)
    assert g.number_of_vertices() == n
    assert is_planar(g)
    if n >= 4:
        # maximal planar: m = 3n - 6
        assert g.number_of_edges() == 3 * n - 6


def test_delaunay_triangulation_planar():
    g = planar.delaunay_triangulation(40, seed=2)
    assert is_planar(g)
    assert g.is_connected()


def test_random_planar_graph_is_planar_and_sparser():
    full = planar.delaunay_triangulation(40, seed=3)
    g = planar.random_planar_graph(40, edge_fraction=0.5, seed=3)
    assert is_planar(g)
    assert g.number_of_edges() <= full.number_of_edges()


def test_grid_graph_triangle_free():
    g = planar.grid_graph(4, 5)
    assert not has_triangle(g)
    assert is_planar(g)


def test_hexagonal_lattice_girth_6():
    g = planar.hexagonal_lattice(2, 3)
    assert is_planar(g)
    assert girth(g) == 6


def test_triangle_free_planar():
    g = planar.triangle_free_planar(60, seed=4)
    assert is_planar(g)
    assert not has_triangle(g)


def test_high_girth_planar():
    g = planar.high_girth_planar(80, seed=5)
    assert is_planar(g)
    assert girth(g) >= 6


def test_subdivide_multiplies_girth():
    base = planar.stacked_triangulation(10, seed=6)
    sub = planar.subdivide(base, times=1)
    assert girth(sub) >= 6
    assert is_planar(sub)
    assert planar.subdivide(base, times=0) == base


def test_outerplanar_fan():
    g = planar.outerplanar_fan(8)
    assert is_planar(g)
    assert g.degree(0) == 7


def test_icosahedron():
    g = planar.icosahedron()
    assert g.number_of_vertices() == 12
    assert all(g.degree(v) == 5 for v in g)
    assert is_planar(g)


def test_planar_generator_validation():
    with pytest.raises(GeneratorError):
        planar.wheel(2)
    with pytest.raises(GeneratorError):
        planar.stacked_triangulation(2)
    with pytest.raises(GeneratorError):
        planar.random_planar_graph(20, edge_fraction=1.5)


# ---------------------------------------------------------------------------
# sparse generators
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("a", [1, 2, 3])
def test_union_of_random_forests_mad_bound(a):
    g = sparse.union_of_random_forests(40, a, seed=a)
    assert maximum_average_degree(g) <= 2 * a + 1e-9


def test_union_of_random_forests_validation():
    # degenerate sizes are legal forests now (the corpus's edge-case
    # instances): no edges, metadata still recorded
    for n in (0, 1):
        g = sparse.union_of_random_forests(n, 2)
        assert len(g) == n and g.number_of_edges() == 0
        assert g.metadata["arboricity_upper_bound"] == 2
    with pytest.raises(GeneratorError):
        sparse.union_of_random_forests(-1, 2)
    with pytest.raises(GeneratorError):
        sparse.union_of_random_forests(10, 0)


@pytest.mark.parametrize("k", [1, 2, 3])
def test_random_degenerate_graph_bound(k):
    g = sparse.random_degenerate_graph(40, k, seed=k)
    from repro.graphs.properties.degeneracy import degeneracy

    assert degeneracy(g) <= k
    assert maximum_average_degree(g) <= 2 * k + 1e-9


def test_random_bounded_mad_graph():
    g = sparse.random_bounded_mad_graph(30, 4.0, seed=7, max_attempts=10)
    assert maximum_average_degree(g) <= 4.0 + 1e-6


def test_near_regular_sparse_graph():
    g = sparse.near_regular_sparse_graph(30, 4, seed=8)
    assert all(g.degree(v) == 4 for v in g)
    from repro.graphs.properties.cliques import find_clique_of_size

    assert find_clique_of_size(g, 5) is None


def test_forest_with_extra_edges():
    g = sparse.forest_with_extra_edges(30, 5, seed=9)
    assert g.number_of_edges() == 29 + 5


# ---------------------------------------------------------------------------
# surface generators
# ---------------------------------------------------------------------------

def test_klein_bottle_grid_structure():
    g = surfaces.klein_bottle_grid(5, 7)
    assert g.number_of_vertices() == 35
    # a quadrangulation of a closed surface is 4-regular
    assert all(g.degree(v) == 4 for v in g)


def test_klein_bottle_grid_validation():
    with pytest.raises(GeneratorError):
        surfaces.klein_bottle_grid(2, 5)


def test_torus_grid_4_regular():
    g = surfaces.torus_grid(4, 5)
    assert all(g.degree(v) == 4 for v in g)


def test_toroidal_triangular_grid_6_regular():
    g = surfaces.toroidal_triangular_grid(5, 6)
    assert all(g.degree(v) == 6 for v in g)
    assert maximum_average_degree(g) == pytest.approx(6.0)


def test_pentagonal_tube_planar_triangle_free():
    g = surfaces.pentagonal_tube(6)
    assert is_planar(g)
    assert not has_triangle(g)
    assert girth(g) in (4, 5)


def test_cycle_power_structure():
    g = surfaces.cycle_power(13, 3)
    assert all(g.degree(v) == 6 for v in g)
    with pytest.raises(GeneratorError):
        surfaces.cycle_power(6, 3)


def test_path_power_planar_3_tree():
    g = surfaces.path_power(30, 3)
    assert is_planar(g)
    assert g.number_of_edges() == 3 * 30 - 6


def test_fisk_like_triangulation_validation():
    with pytest.raises(GeneratorError):
        surfaces.fisk_like_triangulation(16)  # divisible by 4
    with pytest.raises(GeneratorError):
        surfaces.fisk_like_triangulation(11)  # too small
    g = surfaces.fisk_like_triangulation(21)
    assert g.metadata["not_4_colorable"]
