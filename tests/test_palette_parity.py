"""Dict/flat parity of the palette core and the coloring pipelines.

The flat palette refactor promises *bit-identical* results: the interned
bitmask backend (`FlatListAssignment`), the flat classification engine,
the CSR ruling forest, the batched Linial/color-reduction/slot-selection
ports and the flat Theorem 1.3 driver must reproduce the historical
per-vertex set-algebra outputs exactly — colorings, happy sets, charged
rounds.  These hypothesis suites check that over ~100 seeded sparse and
planar instances, including non-integer color labels and empty-list edge
cases.
"""

import random

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring import uniform_lists, random_lists
from repro.coloring.assignment import ListAssignment
from repro.coloring.greedy import greedy_list_coloring
from repro.coloring.palette import FlatListAssignment, PaletteUniverse
from repro.coloring.verification import (
    is_proper_coloring,
    respects_lists,
)
from repro.core import classify_vertices, color_sparse_graph
from repro.distributed import barenboim_elkin_coloring, delta_plus_one_coloring
from repro.graphs.generators import planar, sparse
from repro.graphs.graph import Graph
from repro.graphs.properties.degeneracy import degeneracy_ordering
from repro.verify import ColoringParityOracle, ListColoringOracle


# A color pool mixing types whose reprs interleave in nontrivial ways.
WEIRD_COLORS = [1, 2, 10, "1", "red", "blue", (0, 1), ("x",), -3, None, 2.5]


def _weird_lists(seed: int, vertices) -> dict:
    rng = random.Random(seed)
    out = {}
    for i, v in enumerate(vertices):
        if i % 7 == 3:
            out[v] = []  # empty-list edge case
        else:
            out[v] = rng.sample(WEIRD_COLORS, rng.randint(1, 6))
    return out


def _instance(seed: int):
    """One of the two paper families, frozen, plus its color budget."""
    rng = random.Random(seed)
    if rng.random() < 0.5:
        n = rng.randint(20, 70)
        return sparse.union_of_random_forests(n, 2, seed=seed).freeze(), 4
    n = rng.randint(20, 60)
    return planar.stacked_triangulation(n, seed=seed).freeze(), 6


# -- FlatListAssignment vs naive set algebra --------------------------------


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_flat_assignment_matches_set_algebra(seed):
    graph, _d = _instance(seed)
    lists = _weird_lists(seed, graph.vertices())
    naive = {v: frozenset(colors) for v, colors in lists.items()}
    flat = FlatListAssignment(lists)

    assert flat.as_dict() == naive
    assert flat.minimum_size() == min(len(c) for c in naive.values())
    assert flat.palette() == frozenset().union(*naive.values())

    rng = random.Random(seed + 1)
    keep = {v for v in graph if rng.random() < 0.6}
    assert flat.restrict(keep).as_dict() == {
        v: c for v, c in naive.items() if v in keep
    }

    removals = {
        v: rng.sample(WEIRD_COLORS, 2) for v in graph if rng.random() < 0.5
    }
    removed = flat.without_colors(removals)
    for v, colors in naive.items():
        expected = colors - frozenset(removals.get(v, ()))
        assert removed[v] == expected

    for size in (0, 1, 3):
        truncated = flat.truncated(size)
        for v, colors in naive.items():
            ordered = sorted(colors, key=repr)
            expected = (
                frozenset(ordered[:size]) if len(ordered) > size else colors
            )
            assert truncated[v] == expected

    coloring = {
        v: rng.choice(sorted(naive[v], key=repr))
        for v in graph
        if naive[v] and rng.random() < 0.5
    }
    pruned = flat.pruned_by_coloring(graph, coloring)
    for v, colors in naive.items():
        if v in coloring:
            assert v not in pruned
            continue
        used = {coloring[u] for u in graph.neighbors(v) if u in coloring}
        assert pruned[v] == colors - used


def test_universe_interning_is_repr_sorted():
    universe = PaletteUniverse([3, "b", 1, (2,), "a", 10])
    assert list(universe.colors) == sorted({3, "b", 1, (2,), "a", 10}, key=repr)
    mask = universe.encode(["b", 1])
    assert universe.decode(mask) == frozenset(["b", 1])
    # the lowest set bit is the min-by-repr color: the tie-break the
    # sequential solvers use
    lowest = universe.color_of((mask & -mask).bit_length() - 1)
    assert lowest == min(["b", 1], key=repr)


def test_first_free_colors_kernel_paths():
    """The batch tie-break kernel: int path and packed-rows path agree."""
    import pytest

    from repro.errors import ListAssignmentError

    rng = random.Random(7)
    vertices = [f"v{i}" for i in range(100)]
    lists = {v: rng.sample(WEIRD_COLORS, rng.randint(1, 6)) for v in vertices}
    flat = FlatListAssignment(lists)
    used = [
        flat.universe.encode(rng.sample(WEIRD_COLORS, 3), strict=False)
        for _ in vertices
    ]
    keep = [v for v, u in zip(vertices, used) if flat.mask_of(v) & ~u]
    kept_used = [u for v, u in zip(vertices, used) if flat.mask_of(v) & ~u]
    batch = flat.first_free_colors(keep, kept_used)  # >= 32: packed path
    for v, u, color in zip(keep, kept_used, batch):
        expected = min(flat[v] - flat.universe.decode(u), key=repr)
        assert color == expected
        assert flat.first_free_colors([v], [u]) == [color]  # int path
    empty_v = next(v for v in vertices if flat.mask_of(v))
    with pytest.raises(ListAssignmentError):
        flat.first_free_colors([empty_v], [flat.mask_of(empty_v)])


def test_barenboim_elkin_flat_trailing_isolated_vertex():
    """Regression: a zero-degree vertex at the last CSR index must not
    crash the vectorized H-partition (reduceat empty-segment handling)."""
    g = Graph(vertices=[0, 1, 2])
    g.add_edge(0, 1)  # vertex 2 stays isolated
    frozen = g.freeze()
    a = barenboim_elkin_coloring(frozen, arboricity=1)
    b = barenboim_elkin_coloring(frozen, arboricity=1, backend="flat")
    assert a.coloring == b.coloring
    assert a.rounds == b.rounds


def test_empty_assignment_edge_cases():
    flat = FlatListAssignment({})
    assert len(flat) == 0
    assert flat.minimum_size() == 0
    assert flat.palette() == frozenset()
    wrapped = ListAssignment({})
    assert wrapped.get("missing") == frozenset()
    assert wrapped.restrict([]).as_dict() == {}


# -- classification and pipeline parity -------------------------------------


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), radius=st.sampled_from([1, 2, 4, None]))
def test_classification_engines_agree(seed, radius):
    graph, d = _instance(seed)
    scan = classify_vertices(graph, d, radius=radius, engine="scan")
    flat = classify_vertices(graph, d, radius=radius, engine="flat")
    assert scan.happy == flat.happy
    assert scan.sad == flat.sad
    assert scan.poor == flat.poor


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), use_random_lists=st.booleans())
def test_sparse_coloring_backends_bit_identical(seed, use_random_lists):
    graph, d = _instance(seed)
    lists = (
        random_lists(graph, d, palette_size=2 * d, seed=seed)
        if use_random_lists
        else None
    )
    a = color_sparse_graph(graph, d, lists=lists, backend="dict")
    b = color_sparse_graph(graph, d, lists=lists, backend="flat")
    ColoringParityOracle().check(
        coloring_a=a.coloring, coloring_b=b.coloring,
        rounds_a=a.rounds, rounds_b=b.rounds, labels=("dict", "flat"),
    ).raise_if_failed()
    assert a.ledger.total() == b.ledger.total()
    ListColoringOracle().check(
        graph=graph, coloring=b.coloring,
        lists=lists if lists is not None else uniform_lists(graph, d),
    ).raise_if_failed()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_barenboim_elkin_backends_bit_identical(seed):
    n = random.Random(seed).randint(30, 120)
    graph = sparse.union_of_random_forests(n, 2, seed=seed).freeze()
    a = barenboim_elkin_coloring(graph, arboricity=2)
    b = barenboim_elkin_coloring(graph, arboricity=2, backend="flat")
    ColoringParityOracle().check(
        coloring_a=a.coloring, coloring_b=b.coloring,
        rounds_a=a.rounds, rounds_b=b.rounds, labels=("dict", "flat"),
    ).raise_if_failed()
    assert a.ledger.total() == b.ledger.total()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_batched_delta_plus_one_parity(seed):
    n = random.Random(seed).randint(10, 100)
    graph = sparse.union_of_random_forests(n, 2, seed=seed).freeze()
    a = delta_plus_one_coloring(graph)
    b = delta_plus_one_coloring(graph, batched=True)
    assert a.coloring == b.coloring
    assert (a.rounds, a.messages, a.palette_size) == (
        b.rounds, b.messages, b.palette_size
    )


# -- fast-path equivalences --------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_greedy_list_coloring_fast_path(seed):
    graph, d = _instance(seed)
    lists = random_lists(graph, d, palette_size=2 * d, seed=seed)
    _, order = degeneracy_ordering(graph)
    order = list(reversed(order))
    fast = greedy_list_coloring(graph, lists, order)
    # the slow path: same graph through the mutable representation
    thawed = graph.thaw()
    slow = greedy_list_coloring(thawed, lists, order)
    assert fast == slow
    assert respects_lists(fast, lists)


def test_vectorized_properness_large_graph():
    """n >= 128 exercises the CSR gather path of is_proper_coloring."""
    from repro.coloring.greedy import greedy_coloring

    graph = sparse.union_of_random_forests(500, 2, seed=3).freeze()
    coloring = greedy_coloring(graph)
    assert is_proper_coloring(graph, coloring)
    assert coloring == greedy_coloring(graph.thaw())
    u, v = next(iter(graph.edges()))
    broken = dict(coloring)
    broken[u] = broken[v]
    assert not is_proper_coloring(graph, broken)
    partial = {w: c for w, c in coloring.items() if w != u}
    assert is_proper_coloring(graph, partial)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_verification_fast_paths(seed):
    graph, d = _instance(seed)
    lists = uniform_lists(graph, d)
    coloring = color_sparse_graph(graph, d, backend="flat").coloring
    assert is_proper_coloring(graph, coloring)
    assert is_proper_coloring(graph.thaw(), coloring)
    assert respects_lists(coloring, lists)
    broken = dict(coloring)
    u, v = next(iter(graph.edges()))
    broken[u] = broken[v]
    assert not is_proper_coloring(graph, broken)
    assert not is_proper_coloring(graph.thaw(), broken)
    outside = dict(coloring)
    outside[u] = "not-a-color"
    assert not respects_lists(outside, lists)


def test_minimum_size_default_on_empty_assignment():
    """A zero-vertex assignment has a vacuous minimum: the caller picks it.

    The Moser-Tardos precondition uses ``minimum_size(default=1) >= 1``
    so an empty graph passes while any genuinely empty list still fails.
    """
    empty = FlatListAssignment({})
    assert empty.minimum_size() == 0
    assert empty.minimum_size(default=5) == 5
    assert empty.minimum_size(default=1) == 1


def test_first_free_colors_length_mismatch_raises_both_paths():
    from repro.errors import ListAssignmentError

    lists = {v: list(range(1, 8)) for v in range(40)}
    flat = FlatListAssignment(lists)
    few = list(range(4))          # scalar path (< 32 vertices)
    many = list(range(40))        # packed/vectorized path (>= 32)
    # pre-fix, the scalar path silently zip-truncated the extra masks and
    # the vectorized path died on an opaque broadcast ValueError
    with pytest.raises(ListAssignmentError, match="used masks"):
        flat.first_free_colors(few, [0] * 3)
    with pytest.raises(ListAssignmentError, match="used masks"):
        flat.first_free_colors(few, [0] * 5)
    with pytest.raises(ListAssignmentError, match="used masks"):
        flat.first_free_colors(many, [0] * 39)
