"""Parity property tests: flat-array engine == seed engine, batched == per-node.

The flat-array :class:`~repro.local.simulator.SynchronousSimulator` must
return an *identical* :class:`~repro.local.simulator.SimulationResult`
(rounds, outputs, messages_sent, per_round_messages, finished) to the seed
dict-routed engine (:mod:`repro.local.reference`) for every node algorithm
in the library, across random sparse and planar graphs — and the batched
ports of Cole–Vishkin and the greedy baseline must match their per-node
twins exactly.
"""

from collections import deque

import pytest

from repro.distributed.cole_vishkin import (
    BatchColeVishkinForestColoring,
    ColeVishkinForestColoring,
    color_rooted_forest,
)
from repro.distributed.greedy_baseline import (
    BatchGreedyLocalMaximaAlgorithm,
    GreedyLocalMaximaAlgorithm,
    greedy_distributed_coloring,
)
from repro.distributed.linial import (
    ColorReductionAlgorithm,
    LinialColoringAlgorithm,
)
from repro.graphs.generators import classic, planar, sparse
from repro.local import (
    BallCollectionAlgorithm,
    BatchNodeAlgorithm,
    Network,
    NodeAlgorithm,
    ReferenceSimulator,
    SynchronousSimulator,
    run_node_algorithm,
)
from repro.verify import ColoringParityOracle, assert_simulation_parity


def _graphs():
    """Random sparse / planar instances plus deterministic topologies."""
    cases = [
        ("path_9", classic.path(9)),
        ("cycle_12", classic.cycle(12)),
        ("star_6", classic.star(6)),
        ("grid_4x5", classic.grid_2d(4, 5)),
    ]
    for seed in range(3):
        cases.append(
            (f"forest_union_{seed}", sparse.union_of_random_forests(40, 2, seed=seed))
        )
        cases.append(
            (f"planar_{seed}", planar.stacked_triangulation(30, seed=seed))
        )
    return cases


GRAPHS = _graphs()


def _bfs_parents(graph):
    """Parent pointers of a BFS forest covering every component."""
    parents = {}
    for v in graph:
        if v in parents:
            continue
        parents[v] = None
        queue = deque([v])
        while queue:
            u = queue.popleft()
            for w in graph.neighbors(u):
                if w not in parents:
                    parents[w] = u
                    queue.append(w)
    return parents


def _delta_inputs(graph, network):
    delta = max(1, max((graph.degree(v) for v in graph), default=1))
    return {v: delta for v in graph}


def _ball_inputs(graph, network):
    return {v: 3 for v in graph}


def _reduction_inputs(graph, network):
    # a proper coloring from identifiers (always proper, palette n)
    n = graph.number_of_vertices()
    delta = max(1, max((graph.degree(v) for v in graph), default=1))
    return {v: (network.identifier_of[v] - 1, n, delta) for v in graph}


# every per-node algorithm in the library: (factory, inputs_fn, max_rounds_fn)
ALGORITHMS = [
    ("ball-collection", BallCollectionAlgorithm, _ball_inputs, lambda g: 5),
    ("greedy", GreedyLocalMaximaAlgorithm, _delta_inputs, lambda g: len(g) + 2),
    ("linial", LinialColoringAlgorithm, _delta_inputs, lambda g: 10_000),
    ("color-reduction", ColorReductionAlgorithm, _reduction_inputs,
     lambda g: len(g) + 5),
]


# the shared parity oracle (repro.verify.parity): rounds, outputs,
# message totals, per-round series and the finished flag must all match
_assert_identical = assert_simulation_parity


@pytest.mark.parametrize("graph_name,graph", GRAPHS, ids=[n for n, _ in GRAPHS])
@pytest.mark.parametrize("algo_name,factory,inputs_fn,rounds_fn", ALGORITHMS,
                         ids=[a[0] for a in ALGORITHMS])
def test_flat_engine_matches_seed_engine(
    graph_name, graph, algo_name, factory, inputs_fn, rounds_fn
):
    network = Network(graph.freeze())
    inputs = inputs_fn(graph, network)
    flat = SynchronousSimulator(network).run(
        factory, inputs=inputs, max_rounds=rounds_fn(graph), strict=True
    )
    seed = ReferenceSimulator(network).run(
        factory, inputs=inputs, max_rounds=rounds_fn(graph), strict=True
    )
    _assert_identical(flat, seed)


@pytest.mark.parametrize("graph_name,graph", GRAPHS, ids=[n for n, _ in GRAPHS])
def test_cole_vishkin_parity_all_three_engines(graph_name, graph):
    """CV on a BFS forest of the graph: seed == flat per-node == batched."""
    forest_edges = [
        (v, p) for v, p in _bfs_parents(graph).items() if p is not None
    ]
    forest = classic.empty_graph(0)
    for v in graph:
        forest.add_vertex(v)
    forest.add_edges(forest_edges)
    parents = _bfs_parents(forest)
    network = Network(forest.freeze())
    inputs = {
        v: None if p is None else network.identifier_of[p]
        for v, p in parents.items()
    }
    flat = SynchronousSimulator(network).run(
        ColeVishkinForestColoring, inputs=inputs, max_rounds=200, strict=True
    )
    seed = ReferenceSimulator(network).run(
        ColeVishkinForestColoring, inputs=inputs, max_rounds=200, strict=True
    )
    batch = SynchronousSimulator(network).run(
        BatchColeVishkinForestColoring, inputs=inputs, max_rounds=200, strict=True
    )
    _assert_identical(flat, seed)
    _assert_identical(batch, flat)
    for u, p in parents.items():
        if p is not None:
            assert flat.outputs[u] != flat.outputs[p]
        assert 0 <= flat.outputs[u] < 3


@pytest.mark.parametrize("graph_name,graph", GRAPHS, ids=[n for n, _ in GRAPHS])
def test_greedy_batched_matches_per_node(graph_name, graph):
    per_node = greedy_distributed_coloring(graph, batched=False)
    batched = greedy_distributed_coloring(graph, batched=True)
    ColoringParityOracle().check(
        coloring_a=per_node.coloring, coloring_b=batched.coloring,
        rounds_a=per_node.rounds, rounds_b=batched.rounds,
        labels=("per-node", "batched"),
    ).raise_if_failed()
    assert batched.messages == per_node.messages
    assert batched.palette_size == per_node.palette_size
    for u, v in graph.edges():
        assert batched.coloring[u] != batched.coloring[v]


def test_parity_with_shuffled_identifier_order():
    """Custom identifier orders route through the general fabric path."""
    graph = sparse.union_of_random_forests(50, 2, seed=11).freeze()
    order = graph.vertices()
    order.reverse()
    network = Network(graph, identifier_order=order)
    inputs = _delta_inputs(graph, network)
    flat = SynchronousSimulator(network).run(
        GreedyLocalMaximaAlgorithm, inputs=inputs, max_rounds=60, strict=True
    )
    seed = ReferenceSimulator(network).run(
        GreedyLocalMaximaAlgorithm, inputs=inputs, max_rounds=60, strict=True
    )
    _assert_identical(flat, seed)


def test_segment_reduce_trailing_empty_segments():
    """A trailing degree-0 segment must not truncate the last real one."""
    numpy = pytest.importorskip("numpy")
    from repro.local import segment_reduce

    out = segment_reduce(
        numpy.bitwise_or,
        numpy.array([1, 2, 4], dtype=numpy.int64),
        numpy.array([0, 3, 3], dtype=numpy.int64),
        empty=0,
    )
    assert out.tolist() == [7, 0]
    out = segment_reduce(
        numpy.maximum,
        numpy.array([5, 9, 1, 8], dtype=numpy.int64),
        numpy.array([0, 0, 2, 4, 4, 4], dtype=numpy.int64),
        empty=-1,
    )
    assert out.tolist() == [-1, 9, 8, -1, -1]


def test_batched_cole_vishkin_with_trailing_isolated_vertex():
    """Isolated vertex after a branching vertex: the segment_reduce shape
    that once truncated the last non-empty neighbourhood."""
    forest = classic.empty_graph(9)
    parents = {0: None, 3: 0, 4: 0, 5: 3, 7: 4, 2: 7, 1: 7, 6: 1, 8: None}
    forest.add_edges((v, p) for v, p in parents.items() if p is not None)
    network = Network(forest.freeze())
    inputs = {
        v: None if p is None else network.identifier_of[p]
        for v, p in parents.items()
    }
    batch = SynchronousSimulator(network).run(
        BatchColeVishkinForestColoring, inputs=inputs, max_rounds=200, strict=True
    )
    per_node = SynchronousSimulator(network).run(
        ColeVishkinForestColoring, inputs=inputs, max_rounds=200, strict=True
    )
    _assert_identical(batch, per_node)
    for v, p in parents.items():
        if p is not None:
            assert batch.outputs[v] != batch.outputs[p]


def test_batched_greedy_with_trailing_isolated_vertex():
    graph = classic.star(5)
    graph.add_vertex("isolated")
    per_node = greedy_distributed_coloring(graph, batched=False)
    batched = greedy_distributed_coloring(graph, batched=True)
    assert batched.coloring == per_node.coloring
    assert batched.rounds == per_node.rounds


def test_color_rooted_forest_batched_default_equals_per_node():
    graph = sparse.union_of_random_forests(60, 1, seed=5)
    parents = _bfs_parents(graph)
    batched = color_rooted_forest(graph, parents)
    per_node = color_rooted_forest(graph, parents, batched=False)
    _assert_identical(batched, per_node)


class _DecliningBatch(BatchNodeAlgorithm):
    """A batch program that always declines, to exercise the fallback."""

    fallback = GreedyLocalMaximaAlgorithm

    def can_run(self, context):
        return False


class _NoFallbackBatch(BatchNodeAlgorithm):
    def can_run(self, context):
        return False


def test_batch_fallback_runs_per_node_twin():
    graph = classic.cycle(9)
    network = Network(graph.freeze())
    inputs = {v: 2 for v in graph}
    via_fallback = SynchronousSimulator(network).run(
        _DecliningBatch, inputs=inputs, max_rounds=20, strict=True
    )
    direct = SynchronousSimulator(network).run(
        GreedyLocalMaximaAlgorithm, inputs=inputs, max_rounds=20, strict=True
    )
    _assert_identical(via_fallback, direct)


def test_batch_without_fallback_raises():
    from repro.errors import SimulationError

    with pytest.raises(SimulationError, match="fallback"):
        run_node_algorithm(classic.cycle(5), _NoFallbackBatch)


def test_wide_palette_greedy_falls_back():
    """Δ + 1 >= 63 exceeds the int64 bit trick: must fall back, not wrap."""
    graph = classic.star(70)  # center degree 70
    per_node = greedy_distributed_coloring(graph, batched=False)
    batched = greedy_distributed_coloring(graph, batched=True)
    assert batched.coloring == per_node.coloring
    assert batched.rounds == per_node.rounds


class _MonotoneCountdown(NodeAlgorithm):
    """Finishes after ``input`` rounds; exercises the engine's active set."""

    def initialize(self, context):
        super().initialize(context)
        self.remaining = int(context.input)

    def send(self, round_number):
        if self.remaining <= 0:
            return {}
        return {p: "tick" for p in range(self.context.degree)}

    def receive(self, round_number, messages):
        if self.remaining > 0:
            self.remaining -= 1

    def is_finished(self):
        return self.remaining <= 0


def test_staggered_termination_parity():
    """Nodes finishing at different rounds: active-set bookkeeping == seed."""
    graph = classic.grid_2d(5, 5)
    network = Network(graph.freeze())
    inputs = {v: (i % 7) for i, v in enumerate(graph)}
    flat = SynchronousSimulator(network).run(
        _MonotoneCountdown, inputs=inputs, max_rounds=20, strict=True
    )
    seed = ReferenceSimulator(network).run(
        _MonotoneCountdown, inputs=inputs, max_rounds=20, strict=True
    )
    _assert_identical(flat, seed)
