"""Integration tests for Theorem 1.3 and its corollaries (the paper's main results)."""

import pytest

from repro.coloring.assignment import random_lists, uniform_lists
from repro.coloring.verification import verify_list_coloring
from repro.core import (
    color_bounded_arboricity_graph,
    color_high_girth_planar_graph,
    color_planar_graph,
    color_sparse_graph,
    color_triangle_free_planar_graph,
)
from repro.core.extension import extend_coloring_to_happy_set
from repro.core.happy import classify_vertices
from repro.graphs.generators import classic, planar, sparse


# -- Theorem 1.3, uniform lists ---------------------------------------------------

@pytest.mark.parametrize("maker,kwargs,d", [
    (sparse.union_of_random_forests, {"n": 60, "arboricity": 2, "seed": 1}, 4),
    (sparse.random_degenerate_graph, {"n": 60, "degeneracy": 2, "seed": 2}, 4),
    (classic.random_regular_graph, {"n": 40, "d": 4, "seed": 3}, 4),
    (planar.stacked_triangulation, {"n_vertices": 50, "seed": 4}, 6),
    (planar.outerplanar_fan, {"n": 40}, 4),
    (classic.grid_2d, {"rows": 6, "cols": 7}, 4),
])
def test_theorem_1_3_colors_within_budget(maker, kwargs, d):
    g = maker(**kwargs)
    result = color_sparse_graph(g, d=d)
    assert result.succeeded
    assert result.colors_used() <= d
    verify_list_coloring(g, result.coloring, uniform_lists(g, d))
    assert result.rounds > 0


def test_theorem_1_3_rejects_small_d():
    with pytest.raises(ValueError):
        color_sparse_graph(classic.cycle(5), d=2)


def test_theorem_1_3_finds_clique():
    g = classic.complete_graph(5)
    # embed the K5 into a sparse context
    for i in range(10):
        g.add_edge(0, ("leaf", i))
    result = color_sparse_graph(g, d=4, verify=False)
    assert not result.succeeded
    assert result.clique is not None
    assert len(result.clique) == 5


def test_theorem_1_3_empty_graph():
    from repro.graphs import Graph

    result = color_sparse_graph(Graph(), d=3)
    assert result.succeeded
    assert result.coloring == {}


def test_theorem_1_3_with_list_assignments():
    g = sparse.union_of_random_forests(50, 2, seed=5)
    lists = random_lists(g, 4, palette_size=9, seed=5)
    result = color_sparse_graph(g, d=4, lists=lists)
    assert result.succeeded
    verify_list_coloring(g, result.coloring, lists)


def test_theorem_1_3_d_regular_with_lists():
    """The hardest regime: d-regular graphs (no slack vertices anywhere)."""
    g = classic.random_regular_graph(36, 4, seed=6)
    lists = random_lists(g, 4, palette_size=8, seed=6)
    result = color_sparse_graph(g, d=4, lists=lists)
    assert result.succeeded
    verify_list_coloring(g, result.coloring, lists)


def test_theorem_1_3_small_radius_variant():
    """Correctness is preserved with a smaller (practical) radius."""
    g = planar.stacked_triangulation(40, seed=7)
    result = color_sparse_graph(g, d=6, radius=3)
    assert result.succeeded
    assert result.colors_used() <= 6


def test_theorem_1_3_round_accounting_structure():
    g = sparse.union_of_random_forests(40, 2, seed=8)
    result = color_sparse_graph(g, d=4)
    phases = result.ledger.by_phase()
    assert any("Lemma 3.1" in phase for phase in phases)
    assert any("Lemma 3.2" in phase for phase in phases)
    assert result.rounds == result.ledger.total()


def test_theorem_1_3_uses_at_most_floor_mad_colors_vs_greedy():
    """On planar triangulations the greedy bound is 7 colors; Theorem 1.3 gives 6."""
    g = planar.stacked_triangulation(60, seed=9)
    result = color_planar_graph(g)
    assert result.colors_used() <= 6


# -- Lemma 3.2 in isolation ---------------------------------------------------------

def test_extension_step_extends_partial_coloring():
    g = planar.stacked_triangulation(40, seed=10)
    d = 6
    lists = uniform_lists(g, d)
    cls = classify_vertices(g, d=d, radius=4)
    rest = [v for v in g if v not in cls.happy]
    base = {}
    from repro.coloring.greedy import greedy_list_coloring
    from repro.graphs.properties.degeneracy import degeneracy_ordering

    sub = g.subgraph(rest)
    _, order = degeneracy_ordering(sub)
    base = greedy_list_coloring(sub, lists.restrict(rest), list(reversed(order)))
    coloring, report = extend_coloring_to_happy_set(
        g, lists, happy=cls.happy, rich=cls.rich, coloring=base, radius=4, d=d
    )
    verify_list_coloring(g, coloring, lists)
    assert report.roots >= 1
    assert report.rounds > 0


def test_extension_with_no_happy_vertices_is_identity():
    g = classic.cycle(6)
    lists = uniform_lists(g, 3)
    coloring = {v: 1 + (v % 2) for v in g}
    new, report = extend_coloring_to_happy_set(
        g, lists, happy=set(), rich=set(g.vertices()), coloring=coloring, radius=2, d=3
    )
    assert new == coloring
    assert report.roots == 0


# -- Corollary 2.3 (planar) -----------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 1])
def test_corollary_2_3_planar_six_colors(seed):
    g = planar.delaunay_triangulation(60, seed=seed)
    result = color_planar_graph(g)
    assert result.succeeded and result.colors_used() <= 6


def test_corollary_2_3_triangle_free_four_colors():
    g = planar.triangle_free_planar(60, seed=2)
    result = color_triangle_free_planar_graph(g)
    assert result.succeeded and result.colors_used() <= 4


def test_corollary_2_3_high_girth_three_colors():
    g = planar.high_girth_planar(80, seed=3)
    result = color_high_girth_planar_graph(g)
    assert result.succeeded and result.colors_used() <= 3


def test_corollary_2_3_planarity_check_flag():
    from repro.errors import GraphError

    k5 = classic.complete_graph(5)
    with pytest.raises(GraphError):
        color_planar_graph(k5, check_planarity=True)


def test_corollary_2_3_with_lists():
    g = planar.stacked_triangulation(40, seed=4)
    lists = random_lists(g, 6, palette_size=12, seed=4)
    result = color_planar_graph(g, lists=lists)
    assert result.succeeded
    verify_list_coloring(g, result.coloring, lists)


def test_planar_color_budget():
    from repro.core import planar_color_budget

    assert planar_color_budget(planar.stacked_triangulation(20, seed=5)) == 6
    assert planar_color_budget(planar.grid_graph(4, 4)) == 4
    assert planar_color_budget(planar.hexagonal_lattice(2, 2)) == 3


# -- Corollary 1.4 (arboricity) --------------------------------------------------------

@pytest.mark.parametrize("a", [2, 3])
def test_corollary_1_4_two_a_colors(a):
    g = sparse.union_of_random_forests(60, a, seed=a)
    result = color_bounded_arboricity_graph(g, arboricity=a)
    assert result.succeeded
    assert result.colors_used() <= 2 * a


def test_corollary_1_4_rejects_trees():
    with pytest.raises(ValueError):
        color_bounded_arboricity_graph(classic.random_tree(20, seed=6), arboricity=1)


def test_corollary_1_4_beats_barenboim_elkin_palette():
    """2a colors vs floor((2+eps)a)+1 for the baseline."""
    from repro.distributed import barenboim_elkin_coloring

    a = 2
    g = sparse.union_of_random_forests(80, a, seed=7)
    ours = color_bounded_arboricity_graph(g, arboricity=a)
    baseline = barenboim_elkin_coloring(g, arboricity=a, epsilon=1.0)
    assert ours.colors_used() <= 2 * a < baseline.palette_size
