"""Fault plane tests: plans, perturbable networks, stabilizing runs.

Four layers of coverage:

* **FaultPlan** — validation, canonical event ordering, deterministic
  seeding, digest stability;
* **PerturbableNetwork** — edit semantics (applied vs. skipped) and the
  dict/flat fabric parity after identical edit sequences;
* **run_stabilizing** — both protocols on both backends recover a legal
  quiescent coloring under every fault kind, with the recovery and
  containment oracles passing on the resulting trace, and the strict
  round cap raising the structured ``NonTerminationError``;
* a **hypothesis property** pinning perturbation determinism: the same
  ``FaultPlan`` seed yields bit-identical event logs and final
  colorings across the dict and flat backends and across repeated runs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring import degeneracy_greedy_coloring
from repro.distributed.stabilizing import STABILIZING_PROTOCOLS
from repro.errors import NonTerminationError, SimulationError
from repro.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    PerturbableNetwork,
    event_log_digest,
    palette_bound,
    run_stabilizing,
)
from repro.graphs.frozen import HAS_NUMPY
from repro.graphs.generators import classic, planar, sparse
from repro.verify.recovery import (
    ContainmentOracle,
    RecoveryOracle,
    recovery_metrics,
    rounds_to_recovery,
)

BACKENDS = ("dict", "flat") if HAS_NUMPY else ("dict",)
PROTOCOLS = tuple(sorted(STABILIZING_PROTOCOLS))


def _factory(protocol: str, backend: str):
    per_node, batched = STABILIZING_PROTOCOLS[protocol]
    return batched if backend == "flat" else per_node


def _run(graph, plan, protocol, backend, *, initial=None, max_rounds=300, **kw):
    pnet = PerturbableNetwork(graph, backend=backend)
    return run_stabilizing(
        pnet,
        _factory(protocol, backend),
        plan=plan,
        budget=palette_bound(graph, plan),
        initial_coloring=(
            degeneracy_greedy_coloring(graph) if initial is None else initial
        ),
        max_rounds=max_rounds,
        protocol=protocol,
        **kw,
    )


def _fingerprint(trace) -> tuple:
    return (
        event_log_digest(trace.event_log()),
        tuple(sorted(
            (repr(v), c) for v, c in trace.final_coloring.items()
        )),
        trace.rounds,
        trace.messages_sent(),
        trace.quiescent,
    )


# ---------------------------------------------------------------------------
# FaultPlan
# ---------------------------------------------------------------------------

def test_fault_event_validation():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultEvent(1, "meteor-strike", (0,))
    with pytest.raises(ValueError, match="round"):
        FaultEvent(0, "corrupt-color", (0,), value=2)
    with pytest.raises(ValueError):
        FaultEvent(1, "edge-insert", (0,))  # edge events need two endpoints
    with pytest.raises(ValueError):
        FaultEvent(1, "corrupt-color", (0, 1), value=2)


def test_fault_plan_sorts_events_canonically():
    plan = FaultPlan(
        events=(
            FaultEvent(3, "message-drop", (0, 1)),
            FaultEvent(2, "corrupt-color", (4,), value=1),
            FaultEvent(3, "edge-delete", (0, 1)),
        ),
        seed=0,
    )
    kinds = [e.kind for e in plan.events]
    # within a round, edge edits sort before message faults, so the
    # message fault is judged against the post-edit topology
    assert kinds == ["corrupt-color", "edge-delete", "message-drop"]
    assert plan.last_round() == 3
    assert [e.kind for e in plan.events_for(3)] == ["edge-delete", "message-drop"]
    assert plan.events_for(7) == []


def test_random_plan_is_deterministic_and_respects_kinds():
    graph = planar.stacked_triangulation(40, seed=2)
    a = FaultPlan.random(graph, seed=11, kinds=("corrupt-color", "node-reset"), events=6)
    b = FaultPlan.random(graph, seed=11, kinds=("corrupt-color", "node-reset"), events=6)
    assert a.events == b.events
    assert a.digest() == b.digest()
    assert len(a.events) == 6
    assert set(a.kinds()) <= {"corrupt-color", "node-reset"}
    c = FaultPlan.random(graph, seed=12, kinds=("corrupt-color", "node-reset"), events=6)
    assert c.digest() != a.digest()


def test_palette_bound_covers_inserted_edges():
    graph = classic.path(4)  # max degree 2
    plan = FaultPlan(
        events=(
            FaultEvent(2, "edge-insert", (0, 2)),
            FaultEvent(2, "edge-insert", (0, 3)),
        ),
        seed=0,
    )
    # vertex 0 ends at degree 3 in the union topology -> budget 4
    assert palette_bound(graph, plan) == 4


# ---------------------------------------------------------------------------
# PerturbableNetwork
# ---------------------------------------------------------------------------

def test_edit_semantics_applied_vs_skipped():
    pnet = PerturbableNetwork(classic.path(4), backend="dict")
    assert pnet.insert_edge(0, 2) is True
    assert pnet.insert_edge(0, 2) is False  # already present
    assert pnet.insert_edge(1, 1) is False  # loop
    assert pnet.insert_edge(0, 99) is False  # unknown vertex
    assert pnet.delete_edge(0, 2) is True
    assert pnet.delete_edge(0, 2) is False  # already gone
    assert pnet.has_edge(0, 1) and not pnet.has_edge(0, 2)


@pytest.mark.skipif(not HAS_NUMPY, reason="flat fabric needs numpy")
def test_fabric_parity_after_identical_edits():
    graph = sparse.union_of_random_forests(30, 2, seed=4)
    edits = [("i", 0, 9), ("d", 0, 9), ("i", 3, 17), ("i", 5, 21), ("d", 3, 17)]
    nets = {b: PerturbableNetwork(graph, backend=b) for b in ("dict", "flat")}
    for op, u, v in edits:
        outcomes = {
            b: (net.insert_edge(u, v) if op == "i" else net.delete_edge(u, v))
            for b, net in nets.items()
        }
        assert outcomes["dict"] == outcomes["flat"]
        fd = nets["dict"].network.fabric
        ff = nets["flat"].network.fabric
        assert list(fd.offsets) == list(ff.offsets)
        assert list(fd.endpoints) == list(ff.endpoints)
        assert list(fd.reverse_slot) == list(ff.reverse_slot)


def test_network_rebuild_is_lazy_and_versioned():
    pnet = PerturbableNetwork(classic.cycle(6), backend="dict")
    first = pnet.network
    assert pnet.network is first  # no edit -> cached
    pnet.insert_edge(0, 3)
    assert pnet.network is not first


# ---------------------------------------------------------------------------
# run_stabilizing: recovery under every fault kind
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_recovers_legal_quiescent_state_under_mixed_faults(protocol, backend):
    graph = planar.stacked_triangulation(48, seed=5)
    plan = FaultPlan.random(graph, seed=9, kinds=FAULT_KINDS, events=8, window=4)
    trace = _run(graph, plan, protocol, backend)
    assert trace.quiescent
    assert trace.records[-1].legal
    assert trace.protocol == protocol and trace.backend == backend
    RecoveryOracle().check(trace=trace).raise_if_failed()
    ContainmentOracle().check(trace=trace).raise_if_failed()
    metrics = recovery_metrics(trace)
    assert metrics["recovered"] and metrics["rounds_to_recovery"] >= 0
    assert metrics["containment_violations"] == 0
    assert metrics["faults_applied"] + metrics["faults_skipped"] == len(plan.events)


@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_each_fault_kind_alone_is_survivable(kind):
    graph = classic.random_regular_graph(30, 4, seed=1)
    plan = FaultPlan.random(graph, seed=3, kinds=(kind,), events=4, window=3)
    trace = _run(graph, plan, "min-plus-one", "dict")
    assert trace.quiescent and trace.records[-1].legal
    RecoveryOracle().check(trace=trace).raise_if_failed()


def test_no_faults_means_immediate_quiescence():
    graph = classic.cycle(8)
    plan = FaultPlan(events=(), seed=0)
    trace = _run(graph, plan, "min-plus-one", "dict")
    assert trace.quiescent
    assert rounds_to_recovery(trace) == 0
    # a legal initial coloring never changes without a perturbation
    assert all(not r.changes for r in trace.records)


def test_uncolored_start_is_a_recoverable_corruption():
    # self-stabilization from an arbitrary state: all-zero (uncolored)
    # initial registers must still converge to a legal coloring
    graph = sparse.union_of_random_forests(24, 2, seed=7)
    plan = FaultPlan(events=(), seed=0)
    trace = _run(graph, plan, "stabilizing-greedy", "dict", initial={})
    assert trace.quiescent and trace.records[-1].legal


def test_strict_round_cap_raises_structured_non_termination():
    graph = classic.cycle(10)
    # the plan's last event is beyond the cap, so quiescence is impossible
    plan = FaultPlan(
        events=(FaultEvent(50, "corrupt-color", (0,), value=1),), seed=0
    )
    with pytest.raises(NonTerminationError) as err:
        _run(graph, plan, "min-plus-one", "dict", max_rounds=5, strict=True)
    assert err.value.rounds == 5
    assert err.value.active is not None


def test_engine_rejects_degenerate_parameters():
    graph = classic.path(3)
    plan = FaultPlan(events=(), seed=0)
    pnet = PerturbableNetwork(graph, backend="dict")
    factory = _factory("min-plus-one", "dict")
    with pytest.raises(SimulationError, match="budget"):
        run_stabilizing(pnet, factory, plan=plan, budget=0)
    with pytest.raises(SimulationError, match="max_rounds"):
        run_stabilizing(pnet, factory, plan=plan, budget=3, max_rounds=0)


def test_trace_is_replayable_and_message_counts_are_consistent():
    graph = planar.stacked_triangulation(36, seed=8)
    plan = FaultPlan.random(
        graph, seed=21,
        kinds=("corrupt-color", "message-drop", "message-duplicate"),
        events=6, window=3,
    )
    trace = _run(graph, plan, "min-plus-one", "dict")
    # dropped messages reduce, delivered duplicates increase the count
    # relative to the lossless num_slots-per-round baseline; the exact
    # cross-backend equality is pinned by the determinism property below
    assert trace.messages_sent() > 0
    log = trace.event_log()
    assert len(log) == len(plan.events)
    assert event_log_digest(log) == event_log_digest(trace.event_log())


# ---------------------------------------------------------------------------
# perturbation determinism (the hypothesis property)
# ---------------------------------------------------------------------------

@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    protocol=st.sampled_from(PROTOCOLS),
)
def test_same_seed_yields_bit_identical_runs(seed, protocol):
    """Same FaultPlan seed => identical event logs and final colorings
    across the dict/flat backends and across repeated runs."""
    graph = planar.stacked_triangulation(40, seed=6)
    plan = FaultPlan.random(graph, seed=seed, kinds=FAULT_KINDS, events=6, window=4)
    fingerprints = {
        _fingerprint(_run(graph, plan, protocol, backend))
        for backend in BACKENDS
        for _repeat in range(2)
    }
    assert len(fingerprints) == 1
