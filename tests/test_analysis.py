"""Tests for the experiment harness and curve fitting."""

import json
import math

import pytest

from repro.analysis import (
    BatchTask,
    ExperimentRunner,
    derive_seed,
    fit_polylog,
    normalized_by_polylog,
)


def _batch_probe(x, scale=1, seed=None):
    """Module-level so process-pool workers can pickle it."""
    return {"value": x * scale, "seed": seed}


def test_runner_collects_rows_and_renders_table():
    runner = ExperimentRunner("demo")
    runner.add("n=10", "ours", colors=4, rounds=100)
    runner.add("n=20", "ours", colors=4, rounds=180)
    runner.add("n=10", "baseline", colors=7, rounds=20)
    row = runner.run("n=30", "ours", lambda: {"colors": 5, "rounds": 250})
    assert row.metrics["colors"] == 5
    table = runner.to_table()
    assert "instance" in table and "baseline" in table and "rounds" in table
    assert runner.metric_series("ours", "colors") == [4, 4, 5]
    # run() injects peak_rss_bytes (when the resource module exists)
    columns = [c for c in runner.metric_columns() if c != "peak_rss_bytes"]
    assert columns == ["colors", "rounds"]


def _batch_tasks():
    return [
        BatchTask(f"x={x}", "probe", _batch_probe, args=(x,), kwargs={"scale": 10})
        for x in (1, 2, 3, 4)
    ]


def test_run_batch_serial_preserves_order_and_seeds():
    runner = ExperimentRunner("batch")
    rows = runner.run_batch(_batch_tasks(), base_seed=99, parallel=False)
    assert [r.instance for r in rows] == ["x=1", "x=2", "x=3", "x=4"]
    assert [r.metrics["value"] for r in rows] == [10, 20, 30, 40]
    assert [r.metrics["seed"] for r in rows] == [derive_seed(99, i) for i in range(4)]
    assert runner.rows == rows


def test_run_batch_parallel_matches_serial():
    serial = ExperimentRunner("serial")
    parallel = ExperimentRunner("parallel")
    serial_rows = serial.run_batch(_batch_tasks(), base_seed=5, parallel=False)
    parallel_rows = parallel.run_batch(_batch_tasks(), base_seed=5, max_workers=2)

    def _stable(rows):
        # peak_rss_bytes measures the executing process, which legitimately
        # differs between the parent (serial) and pool workers (parallel)
        return [
            {k: v for k, v in r.metrics.items() if k != "peak_rss_bytes"}
            for r in rows
        ]

    assert _stable(serial_rows) == _stable(parallel_rows)


def test_run_batch_deterministic_seeding_is_stable():
    # regression pin: the derivation must never change silently, or archived
    # BENCH_*.json artifacts stop being reproducible
    assert derive_seed(0, 0) != derive_seed(0, 1)
    assert derive_seed(0, 1) == derive_seed(0, 1)
    assert derive_seed(1, 0) != derive_seed(0, 0)
    assert all(0 <= derive_seed(s, i) < 2**63 for s in range(3) for i in range(3))


_EXECUTION_LOG = []


def _batch_flaky(x, seed=None):
    _EXECUTION_LOG.append(x)
    if x == 2:
        raise OSError("task exploded")  # an OSError must NOT trigger re-runs
    return {"value": x}


def test_run_batch_task_error_propagates_without_reexecution():
    _EXECUTION_LOG.clear()
    runner = ExperimentRunner("flaky")
    tasks = [BatchTask(f"x={x}", "a", _batch_flaky, args=(x,)) for x in (1, 2, 3)]
    with pytest.raises(OSError, match="task exploded"):
        runner.run_batch(tasks, parallel=False)
    # each task ran exactly once in this process; no inline fallback re-run
    assert _EXECUTION_LOG == [1, 2, 3]
    assert runner.rows == []


def test_run_batch_without_base_seed_does_not_inject():
    runner = ExperimentRunner("no-seed")
    rows = runner.run_batch(
        [BatchTask("x", "probe", _batch_probe, args=(7,))], parallel=False
    )
    metrics = dict(rows[0].metrics)
    assert metrics.pop("peak_rss_bytes", 1) > 0  # injected by the engine
    assert metrics == {"value": 7, "seed": None}


def test_export_json_artifact(tmp_path):
    runner = ExperimentRunner("CSR primitives: test", metadata={"n": 10})
    runner.add("g1", "algo", colors=3, note={"nested": (1, 2)})
    path = runner.export_json(tmp_path / "BENCH_test.json")
    data = json.loads(path.read_text())
    assert data["schema_version"] == 1
    assert data["name"] == "CSR primitives: test"
    assert data["metadata"] == {"n": 10}
    assert data["rows"][0]["instance"] == "g1"
    assert data["rows"][0]["metrics"]["colors"] == 3
    assert data["rows"][0]["metrics"]["note"] == {"nested": [1, 2]}
    assert "generated_at" in data


def test_export_json_default_filename_from_slug(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    runner = ExperimentRunner("E13: CSR core — primitives")
    runner.add("g", "a", x=1)
    path = runner.export_json()
    assert path.name == "BENCH_E13_CSR_core_primitives.json"
    assert path.exists()


def test_fit_polylog_recovers_exponent():
    ns = [100, 400, 1600, 6400, 25600]
    rounds = [3.0 * math.log2(n) ** 3 for n in ns]
    fit = fit_polylog(ns, rounds)
    assert fit.exponent == pytest.approx(3.0, abs=0.05)
    assert fit.coefficient == pytest.approx(3.0, rel=0.1)
    assert fit.predict(100) == pytest.approx(rounds[0], rel=0.05)


def test_fit_polylog_requires_two_points():
    with pytest.raises(ValueError):
        fit_polylog([10], [5])


def test_normalized_by_polylog_bounded_for_polylog_data():
    ns = [64, 256, 1024, 4096]
    rounds = [2.0 * math.log2(n) ** 3 for n in ns]
    values = normalized_by_polylog(ns, rounds, power=3)
    assert max(values) / min(values) == pytest.approx(1.0, abs=1e-9)


def test_normalized_by_polylog_detects_linear_growth():
    ns = [64, 256, 1024, 4096]
    rounds = [float(n) for n in ns]
    values = normalized_by_polylog(ns, rounds, power=3)
    assert values[-1] > values[0] * 5
