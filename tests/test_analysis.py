"""Tests for the experiment harness and curve fitting."""

import math

import pytest

from repro.analysis import ExperimentRunner, fit_polylog, normalized_by_polylog


def test_runner_collects_rows_and_renders_table():
    runner = ExperimentRunner("demo")
    runner.add("n=10", "ours", colors=4, rounds=100)
    runner.add("n=20", "ours", colors=4, rounds=180)
    runner.add("n=10", "baseline", colors=7, rounds=20)
    row = runner.run("n=30", "ours", lambda: {"colors": 5, "rounds": 250})
    assert row.metrics["colors"] == 5
    table = runner.to_table()
    assert "instance" in table and "baseline" in table and "rounds" in table
    assert runner.metric_series("ours", "colors") == [4, 4, 5]
    assert runner.metric_columns() == ["colors", "rounds"]


def test_fit_polylog_recovers_exponent():
    ns = [100, 400, 1600, 6400, 25600]
    rounds = [3.0 * math.log2(n) ** 3 for n in ns]
    fit = fit_polylog(ns, rounds)
    assert fit.exponent == pytest.approx(3.0, abs=0.05)
    assert fit.coefficient == pytest.approx(3.0, rel=0.1)
    assert fit.predict(100) == pytest.approx(rounds[0], rel=0.05)


def test_fit_polylog_requires_two_points():
    with pytest.raises(ValueError):
        fit_polylog([10], [5])


def test_normalized_by_polylog_bounded_for_polylog_data():
    ns = [64, 256, 1024, 4096]
    rounds = [2.0 * math.log2(n) ** 3 for n in ns]
    values = normalized_by_polylog(ns, rounds, power=3)
    assert max(values) / min(values) == pytest.approx(1.0, abs=1e-9)


def test_normalized_by_polylog_detects_linear_growth():
    ns = [64, 256, 1024, 4096]
    rounds = [float(n) for n in ns]
    values = normalized_by_polylog(ns, rounds, power=3)
    assert values[-1] > values[0] * 5
