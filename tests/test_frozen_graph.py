"""FrozenGraph <-> Graph parity (property-based) and CSR-specific behavior.

The central invariant of the CSR core: freezing never changes the answer of
any read query.  The parity tests run both representations over >= 100
random instances (plus structured families) and compare degrees, edges,
balls, BFS distances, components, subgraphs and the degeneracy machinery;
both array backends (numpy and pure Python) are exercised.
"""

import pickle
import random

import pytest

from repro.errors import GraphError
from repro.graphs import FrozenGraph, Graph, freeze
from repro.graphs.frozen import HAS_NUMPY
from repro.graphs.generators import classic, sparse
from repro.graphs.properties.degeneracy import (
    _degeneracy_ordering_sets,
    core_numbers,
    degeneracy_ordering,
)
from repro.graphs.properties.mad import mad_lower_bound_greedy, maximum_average_degree

BACKENDS = [True, False] if HAS_NUMPY else [False]


def random_instance(seed: int) -> Graph:
    """A random graph; the family varies with the seed."""
    rng = random.Random(seed)
    family = seed % 4
    if family == 0:  # G(n, p)
        n = rng.randrange(1, 36)
        p = rng.choice([0.05, 0.1, 0.25, 0.5])
        g = Graph(vertices=range(n))
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < p:
                    g.add_edge(i, j)
        return g
    if family == 1:
        return sparse.union_of_random_forests(rng.randrange(2, 40), rng.randrange(1, 4), seed=seed)
    if family == 2:
        return sparse.random_degenerate_graph(rng.randrange(1, 40), rng.randrange(0, 4), seed=seed)
    # disconnected union with tuple labels
    g = Graph()
    for c in range(rng.randrange(1, 4)):
        size = rng.randrange(1, 10)
        vertices = [(c, i) for i in range(size)]
        g.add_vertices(vertices)
        for i in range(1, size):
            g.add_edge(vertices[rng.randrange(i)], vertices[i])
    return g


def as_edge_set(graph):
    return {frozenset(e) for e in graph.edges()}


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_parity_on_100_random_instances(use_numpy):
    """Acceptance: identical degrees, balls, components, degeneracy order."""
    checked = 0
    for seed in range(100):
        g = random_instance(seed)
        f = g.freeze(use_numpy=use_numpy)
        assert len(f) == len(g)
        assert set(f.vertices()) == set(g.vertices())
        assert f.degrees() == g.degrees()
        assert f.number_of_edges() == g.number_of_edges()
        assert as_edge_set(f) == as_edge_set(g)
        assert sorted(map(frozenset, f.connected_components())) == sorted(
            map(frozenset, g.connected_components())
        )
        rng = random.Random(seed + 1000)
        for v in g:
            assert set(f.neighbors(v)) == set(g.neighbors(v))
            radius = rng.randrange(0, 4)
            assert f.ball(v, radius) == g.ball(v, radius)
        # identical degeneracy ordering through the public entry point
        assert degeneracy_ordering(f) == degeneracy_ordering(g)
        checked += 1
    assert checked == 100


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_parity_bfs_subgraph_has_edge(use_numpy):
    for seed in range(40):
        g = random_instance(seed)
        f = g.freeze(use_numpy=use_numpy)
        rng = random.Random(seed)
        vertices = g.vertices()
        for v in vertices:
            assert f.bfs_distances(v) == g.bfs_distances(v)
            assert f.bfs_distances(v, radius=2) == g.bfs_distances(v, radius=2)
        for _ in range(20):
            u, v = rng.choice(vertices), rng.choice(vertices)
            assert f.has_edge(u, v) == g.has_edge(u, v)
        keep = [v for v in vertices if rng.random() < 0.5]
        fs, gs = f.subgraph(keep), g.subgraph(keep)
        assert isinstance(fs, FrozenGraph)
        assert fs.degrees() == gs.degrees()
        assert as_edge_set(fs) == as_edge_set(gs)


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_parity_degeneracy_oracles(use_numpy):
    """CSR peel agrees with the legacy heap implementation and is valid."""
    for seed in range(30):
        g = random_instance(seed)
        f = g.freeze(use_numpy=use_numpy)
        degen_legacy, order_legacy = _degeneracy_ordering_sets(g)
        degen, order = f.degeneracy_ordering()
        assert degen == degen_legacy
        assert sorted(map(repr, order)) == sorted(map(repr, order_legacy))
        position = {v: i for i, v in enumerate(order)}
        for v in g:
            later = sum(1 for u in g.neighbors(v) if position[u] > position[v])
            assert later <= degen
        cores = core_numbers(f)
        assert max(cores.values(), default=0) == degen
        if g.number_of_edges():
            lower = mad_lower_bound_greedy(f)
            exact = maximum_average_degree(g)
            assert exact / 2 - 1e-9 <= lower <= exact + 1e-9


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_all_balls_matches_per_vertex(use_numpy):
    for seed in range(20):
        g = random_instance(seed)
        f = g.freeze(use_numpy=use_numpy)
        for radius in (0, 1, 2, 7):
            assert f.all_balls(radius) == {v: g.ball(v, radius) for v in g}


def test_backends_produce_identical_orderings():
    if not HAS_NUMPY:
        pytest.skip("numpy not installed")
    g = classic.grid_2d(7, 9)
    fn, fp = g.freeze(use_numpy=True), g.freeze(use_numpy=False)
    assert fn.degeneracy_ordering() == fp.degeneracy_ordering()
    assert fn.core_numbers() == fp.core_numbers()
    assert fn.peel_density_lower_bound() == pytest.approx(
        fp.peel_density_lower_bound()
    )


def test_freeze_thaw_round_trip():
    for seed in range(10):
        g = random_instance(seed)
        f = g.freeze()
        assert f.thaw() == g
        assert f == g  # cross-representation equality
        assert freeze(f) is f  # idempotent
        assert f.freeze() is f
        assert f.copy() is f


def test_frozen_graph_is_immutable():
    f = classic.cycle(4).freeze()
    with pytest.raises(GraphError):
        f.add_edge(0, 2)
    with pytest.raises(GraphError):
        f.add_vertex(99)
    with pytest.raises(GraphError):
        f.remove_vertex(0)
    with pytest.raises(GraphError):
        f.remove_edge(0, 1)


def test_frozen_graph_errors_on_missing_vertex():
    f = classic.path(3).freeze()
    with pytest.raises(GraphError):
        f.neighbors(99)
    with pytest.raises(GraphError):
        f.degree(99)
    with pytest.raises(GraphError):
        f.bfs_distances(99)
    assert not f.has_edge(0, 99)


def test_frozen_graph_stats_and_metadata():
    g = sparse.union_of_random_forests(30, 2, seed=1)
    f = g.freeze()
    assert f.max_degree() == g.max_degree()
    assert f.min_degree() == g.min_degree()
    assert f.average_degree() == pytest.approx(g.average_degree())
    assert f.metadata == g.metadata
    assert f.name == g.name
    assert not f.is_empty()
    assert Graph().freeze().is_empty()
    assert Graph().freeze().degeneracy_ordering() == (0, [])
    assert Graph().freeze().all_balls(3) == {}


def test_frozen_graph_pickle_round_trip():
    g = random_instance(3)
    f = g.freeze()
    f2 = pickle.loads(pickle.dumps(f))
    assert f2 == f
    assert f2.degrees() == f.degrees()
    assert f2.degeneracy_ordering() == f.degeneracy_ordering()


def test_zero_copy_neighbor_slice():
    f = classic.cycle(5).freeze()
    i = f.index_of(0)
    sl = f.neighbor_slice(i)
    assert sorted(f.label_of(int(j)) for j in sl) == sorted(f.neighbors(0))


def test_pipeline_parity_graph_vs_frozen():
    """Theorem 1.3 end to end: frozen input takes the CSR peeling branch and
    must produce the same layers, rounds and coloring as the mutable path."""
    from repro.core.peeling import peel_happy_layers
    from repro.core.sparse_coloring import color_sparse_graph

    g = sparse.union_of_random_forests(60, 2, seed=7)
    peel_dict = peel_happy_layers(g, 4)
    peel_csr = peel_happy_layers(g.freeze(), 4)
    assert [layer.removed for layer in peel_dict.layers] == [
        layer.removed for layer in peel_csr.layers
    ]
    assert peel_dict.ledger.total() == peel_csr.ledger.total()

    # colors may legitimately differ (Lemma 3.2 tie-breaks on subgraph
    # iteration order), but both must be verified d-colorings of the whole
    # graph with the same structural cost
    res_dict = color_sparse_graph(g, 4)
    res_csr = color_sparse_graph(g.freeze(), 4)  # verify=True checks propriety
    assert res_dict.succeeded and res_csr.succeeded
    assert set(res_csr.coloring) == set(g.vertices())
    assert res_csr.colors_used() <= 4
    assert res_dict.rounds == res_csr.rounds


def test_frozen_subgraph_of_frozen_stays_frozen_and_correct():
    g = classic.grid_2d(5, 5)
    f = g.freeze()
    sub = f.subgraph([v for v in g if sum(v) % 2 == 0])
    assert isinstance(sub, FrozenGraph)
    expected = g.subgraph([v for v in g if sum(v) % 2 == 0])
    assert sub.degrees() == expected.degrees()
    assert sub.thaw() == expected
