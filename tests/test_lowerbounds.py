"""Tests for the lower-bound machinery (Observation 2.4, Theorems 1.5, 2.5, 2.6)."""

import pytest

from repro.errors import LowerBoundError
from repro.graphs.generators import classic, surfaces
from repro.lowerbounds import (
    balls_embed,
    bipartite_grid_lower_bound,
    certify_coloring_lower_bound,
    cycle_power_chromatic_lower_bound,
    cycle_power_independence_number,
    klein_grid_chromatic_number,
    log_star_floor,
    path_two_coloring_lower_bound,
    planar_four_coloring_lower_bound,
    triangle_free_lower_bound,
)


# -- Observation 2.4 core ------------------------------------------------------------

def test_balls_embed_positive():
    cyc = classic.cycle(20)
    pth = classic.path(40)
    ok, checked = balls_embed(cyc, pth, radius=3, sample_obstruction_vertices=[0])
    assert ok and checked == 1


def test_balls_embed_negative():
    triangle = classic.complete_graph(3)
    pth = classic.path(10)
    ok, _ = balls_embed(triangle, pth, radius=1)
    assert not ok


def test_certificate_requires_vertex_count():
    big = classic.cycle(21)
    small = classic.path(5)
    with pytest.raises(LowerBoundError):
        certify_coloring_lower_bound(big, small, rounds=1, colors=2,
                                     obstruction_chromatic_lower_bound=3)


def test_certificate_requires_chromatic_gap():
    cyc = classic.cycle(20)
    pth = classic.path(40)
    with pytest.raises(LowerBoundError):
        certify_coloring_lower_bound(cyc, pth, rounds=1, colors=3,
                                     obstruction_chromatic_lower_bound=3)


def test_certificate_fails_when_balls_do_not_embed():
    triangle = classic.complete_graph(3)
    pth = classic.path(10)
    with pytest.raises(LowerBoundError):
        certify_coloring_lower_bound(triangle, pth, rounds=1, colors=2,
                                     obstruction_chromatic_lower_bound=3)


# -- Linial / paths -------------------------------------------------------------------

def test_log_star_floor():
    assert log_star_floor(2) == 1
    assert log_star_floor(16) == 3
    assert log_star_floor(2 ** 16) == 4
    assert log_star_floor(10 ** 9) <= 5


@pytest.mark.parametrize("rounds", [1, 3, 6])
def test_path_two_coloring_lower_bound(rounds):
    result = path_two_coloring_lower_bound(60, rounds=rounds)
    assert result.certificate.rounds == rounds
    assert result.certificate.colors == 2
    assert result.certificate.obstruction_chromatic_lower_bound == 3


def test_path_lower_bound_needs_enough_vertices():
    with pytest.raises(ValueError):
        path_two_coloring_lower_bound(5, rounds=10)


# -- Klein-bottle grids (Theorems 2.5, 2.6) ---------------------------------------------

def test_klein_grid_chromatic_number_small():
    assert klein_grid_chromatic_number(5, 5) == 4
    assert klein_grid_chromatic_number(3, 5) == 4


def test_klein_grid_chromatic_number_large_uses_gallai():
    assert klein_grid_chromatic_number(7, 9) == 4


def test_triangle_free_lower_bound_certificate():
    result = triangle_free_lower_bound(4, rounds=2)
    assert result.certificate.colors == 3
    assert result.certificate.obstruction_chromatic_lower_bound >= 4
    # the target really is planar and triangle-free
    from repro.graphs.properties.girth import has_triangle
    from repro.graphs.properties.planarity import is_planar

    assert is_planar(result.target)
    assert not has_triangle(result.target)


def test_triangle_free_lower_bound_radius_guard():
    with pytest.raises(LowerBoundError):
        triangle_free_lower_bound(3, rounds=5)


def test_bipartite_grid_lower_bound_certificate():
    result = bipartite_grid_lower_bound(4, rounds=2)
    assert result.certificate.colors == 3
    from repro.graphs.properties.planarity import is_planar

    assert is_planar(result.target)
    # the target grid is 2-colorable, yet 3-coloring the class is impossible fast
    from repro.coloring.exact import is_k_colorable

    assert is_k_colorable(result.target.subgraph(list(result.target.vertices())[:20]), 2)


def test_bipartite_grid_lower_bound_radius_guard():
    with pytest.raises(LowerBoundError):
        bipartite_grid_lower_bound(3, rounds=4)


# -- Fisk-like obstruction (Theorem 1.5) --------------------------------------------------

def test_cycle_power_independence_and_chromatic_bounds():
    assert cycle_power_independence_number(21) == 5
    assert cycle_power_chromatic_lower_bound(21) == 5
    assert cycle_power_chromatic_lower_bound(16) == 4  # divisible by 4: no bound


def test_cycle_power_independence_number_is_exact_small():
    """Verify alpha(C_n(1,2,3)) = floor(n/4) exactly on a small instance."""
    import itertools

    n = 14
    g = surfaces.cycle_power(n, 3)
    alpha = cycle_power_independence_number(n)
    # there is an independent set of that size
    best = max(
        (s for s in itertools.combinations(range(n), alpha)
         if all(not g.has_edge(u, v) for u, v in itertools.combinations(s, 2))),
        default=None,
    )
    assert best is not None
    # and none larger (spot-check via exact chromatic number consistency)
    from repro.coloring.exact import chromatic_number

    assert chromatic_number(g, upper_bound=7) >= (n + alpha - 1) // alpha


@pytest.mark.parametrize("n,rounds", [(23, 2), (37, 4)])
def test_planar_four_coloring_lower_bound(n, rounds):
    result = planar_four_coloring_lower_bound(n, rounds=rounds)
    assert result.certificate.colors == 4
    assert result.certificate.obstruction_chromatic_lower_bound >= 5
    from repro.graphs.properties.planarity import is_planar

    assert is_planar(result.target)


def test_planar_four_coloring_lower_bound_exact_verification():
    result = planar_four_coloring_lower_bound(23, rounds=2, verify_chromatic_exactly=True)
    assert result.certificate.obstruction_chromatic_lower_bound >= 5


def test_planar_four_coloring_lower_bound_guards():
    with pytest.raises(LowerBoundError):
        planar_four_coloring_lower_bound(20, rounds=2)  # divisible by 4
    with pytest.raises(LowerBoundError):
        planar_four_coloring_lower_bound(21, rounds=10)  # balls wrap around


def test_theorem_1_5_shape():
    """The certified round bound grows linearly with n (the o(n) impossibility)."""
    small = planar_four_coloring_lower_bound(29, rounds=2)
    large = planar_four_coloring_lower_bound(53, rounds=6)
    assert large.certificate.rounds > small.certificate.rounds
    assert large.obstruction.number_of_vertices() > small.obstruction.number_of_vertices()
