"""Tests for structural properties: degeneracy, girth, blocks, Gallai trees, cliques."""

import math

import pytest

from repro.graphs.generators import classic, planar
from repro.graphs.properties.blocks import (
    biconnected_components,
    block_cut_tree,
    blocks_and_cut_vertices,
    cut_vertices,
    is_biconnected,
    leaf_blocks,
)
from repro.graphs.properties.cliques import find_clique_of_size, is_clique, max_clique_greedy
from repro.graphs.properties.degeneracy import (
    core_numbers,
    degeneracy,
    degeneracy_ordering,
    greedy_color_along,
    k_core,
)
from repro.graphs.properties.gallai import (
    block_is_clique,
    block_is_odd_cycle,
    is_gallai_forest,
    is_gallai_tree,
    non_gallai_blocks,
)
from repro.graphs.properties.girth import girth, has_triangle, shortest_cycle_through


# -- degeneracy -------------------------------------------------------------

def test_degeneracy_of_basic_graphs():
    assert degeneracy(classic.path(10)) == 1
    assert degeneracy(classic.cycle(10)) == 2
    assert degeneracy(classic.complete_graph(5)) == 4
    assert degeneracy(classic.random_tree(30, seed=1)) == 1


def test_degeneracy_of_planar_triangulation():
    g = planar.stacked_triangulation(30, seed=2)
    assert degeneracy(g) == 3  # planar 3-trees are exactly 3-degenerate


def test_degeneracy_ordering_property():
    g = planar.delaunay_triangulation(40, seed=3)
    degen, order = degeneracy_ordering(g)
    position = {v: i for i, v in enumerate(order)}
    for v in g:
        later = sum(1 for u in g.neighbors(v) if position[u] > position[v])
        assert later <= degen


def test_greedy_color_along_degeneracy_order():
    g = planar.stacked_triangulation(40, seed=4)
    degen, order = degeneracy_ordering(g)
    coloring = greedy_color_along(g, order)
    assert len(set(coloring.values())) <= degen + 1
    assert all(coloring[u] != coloring[v] for u, v in g.edges())


def test_core_numbers_and_k_core():
    g = classic.complete_graph(4)
    g.add_edge(0, "pendant")
    cores = core_numbers(g)
    assert cores["pendant"] == 1
    assert cores[1] == 3
    assert set(k_core(g, 3).vertices()) == {0, 1, 2, 3}


# -- girth ------------------------------------------------------------------

def test_girth_values():
    assert girth(classic.cycle(7)) == 7
    assert girth(classic.complete_graph(4)) == 3
    assert math.isinf(girth(classic.random_tree(20, seed=5)))
    assert girth(classic.grid_2d(3, 3)) == 4


def test_has_triangle():
    assert has_triangle(classic.complete_graph(3))
    assert not has_triangle(classic.grid_2d(4, 4))
    assert not has_triangle(classic.random_tree(10, seed=6))


def test_shortest_cycle_through():
    g = classic.cycle(8)
    assert shortest_cycle_through(g, 0) == 8
    g.add_edge(0, 4)
    assert shortest_cycle_through(g, 0) == 5
    assert math.isinf(shortest_cycle_through(classic.path(5), 2))


# -- blocks -----------------------------------------------------------------

def test_blocks_of_a_tree_are_edges():
    t = classic.random_tree(15, seed=7)
    blocks = biconnected_components(t)
    assert all(len(b) == 2 for b in blocks)
    assert len(blocks) == 14


def test_blocks_and_cut_vertices_of_two_triangles():
    g = classic.gallai_tree([("clique", 3), ("clique", 3)])
    blocks, cuts = blocks_and_cut_vertices(g)
    assert len(blocks) == 2
    assert len(cuts) == 1


def test_isolated_vertex_is_singleton_block():
    from repro.graphs import Graph

    g = Graph(vertices=[1, 2], edges=[])
    blocks = biconnected_components(g)
    assert sorted(len(b) for b in blocks) == [1, 1]


def test_is_biconnected():
    assert is_biconnected(classic.cycle(5))
    assert is_biconnected(classic.complete_graph(4))
    assert not is_biconnected(classic.path(4))
    assert not is_biconnected(classic.gallai_tree([("clique", 3), ("clique", 3)]))


def test_block_cut_tree_shape():
    g = classic.gallai_tree([("clique", 3), ("odd_cycle", 5), ("clique", 4)])
    tree, membership, blocks = block_cut_tree(g)
    assert len(blocks) == 3
    # the block-cut tree of a path of blocks is itself a path: b - c - b - c - b
    assert tree.number_of_vertices() == 5
    assert tree.number_of_edges() == 4
    cut_count = len(cut_vertices(g))
    assert cut_count == 2
    assert all(len(membership[v]) >= 1 for v in g)


def test_leaf_blocks():
    g = classic.gallai_tree([("clique", 3), ("odd_cycle", 5), ("clique", 4)])
    leaves = leaf_blocks(g)
    assert len(leaves) == 2


# -- Gallai trees ------------------------------------------------------------

def test_trees_and_cliques_and_odd_cycles_are_gallai():
    assert is_gallai_tree(classic.random_tree(20, seed=8))
    assert is_gallai_tree(classic.complete_graph(5))
    assert is_gallai_tree(classic.cycle(7))
    assert is_gallai_tree(classic.gallai_tree([("clique", 4), ("odd_cycle", 3)]))


def test_even_cycles_and_theta_graphs_are_not_gallai():
    assert not is_gallai_tree(classic.cycle(6))
    assert not is_gallai_tree(classic.theta_graph([2, 2, 2]))
    assert not is_gallai_tree(classic.grid_2d(2, 3))


def test_gallai_forest_vs_tree():
    from repro.graphs import Graph

    two_triangles = Graph(edges=[(1, 2), (2, 3), (1, 3), (4, 5), (5, 6), (4, 6)])
    assert is_gallai_forest(two_triangles)
    assert not is_gallai_tree(two_triangles)  # disconnected
    assert not is_gallai_tree(Graph())


def test_non_gallai_blocks_identified():
    g = classic.gallai_tree([("clique", 3)])
    # attach an even (4-)cycle sharing one vertex
    g.add_edges([(0, 100), (100, 101), (101, 102), (102, 0)])
    bad = non_gallai_blocks(g)
    assert len(bad) == 1
    assert len(bad[0]) == 4


def test_block_predicates():
    g = classic.cycle(5)
    block = frozenset(g.vertices())
    assert block_is_odd_cycle(g, block)
    assert not block_is_clique(g, block)
    k4 = classic.complete_graph(4)
    assert block_is_clique(k4, frozenset(k4.vertices()))


# -- cliques ----------------------------------------------------------------

def test_find_clique_of_size():
    g = planar.stacked_triangulation(20, seed=9)
    assert find_clique_of_size(g, 4) is not None  # planar 3-trees contain K4
    assert find_clique_of_size(g, 5) is None      # but no K5 (planar)
    assert find_clique_of_size(classic.complete_graph(6), 6) is not None
    assert find_clique_of_size(classic.cycle(8), 3) is None


def test_find_clique_small_sizes():
    g = classic.path(3)
    assert find_clique_of_size(g, 1) is not None
    assert find_clique_of_size(g, 2) is not None
    from repro.graphs import Graph

    assert find_clique_of_size(Graph(), 1) is None


def test_is_clique_and_greedy():
    g = classic.complete_graph(5)
    assert is_clique(g, [0, 1, 2, 3])
    assert len(max_clique_greedy(g)) == 5
    assert not is_clique(classic.cycle(5), [0, 1, 2])
