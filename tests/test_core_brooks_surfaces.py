"""Tests for Corollary 2.1 (Brooks), Theorem 6.1 (nice lists) and Corollary 2.11 (genus)."""

import pytest

from repro.coloring.assignment import ListAssignment, uniform_lists
from repro.coloring.verification import verify_list_coloring
from repro.core import (
    brooks_list_coloring,
    color_embedded_graph,
    genus_color_budget,
    is_nice_list_assignment,
    nice_list_coloring,
)
from repro.errors import ListAssignmentError
from repro.graphs.generators import classic, planar, surfaces


# -- Corollary 2.1 -----------------------------------------------------------------

@pytest.mark.parametrize("n,d", [(30, 3), (40, 4), (30, 5)])
def test_brooks_on_regular_graphs(n, d):
    g = classic.random_regular_graph(n, d, seed=d)
    result = brooks_list_coloring(g)
    assert result.succeeded
    assert result.colors_used() <= d
    verify_list_coloring(g, result.coloring, uniform_lists(g, d))


def test_brooks_detects_clique_component():
    g = classic.complete_graph(5)
    extra = classic.random_regular_graph(20, 4, seed=1).relabeled(
        {i: ("r", i) for i in range(20)}
    )
    for v in extra.vertices():
        g.add_vertex(v)
    for u, v in extra.edges():
        g.add_edge(u, v)
    result = brooks_list_coloring(g, max_degree=4, verify=False)
    assert not result.succeeded
    assert len(result.clique) == 5


def test_brooks_requires_degree_three():
    with pytest.raises(ValueError):
        brooks_list_coloring(classic.cycle(8))


def test_brooks_with_lists():
    g = classic.random_regular_graph(24, 4, seed=2)
    from repro.coloring.assignment import random_lists

    lists = random_lists(g, 4, palette_size=8, seed=2)
    result = brooks_list_coloring(g, lists=lists)
    assert result.succeeded
    verify_list_coloring(g, result.coloring, lists)


def test_brooks_on_non_regular_graph():
    g = planar.delaunay_triangulation(50, seed=3)
    delta = g.max_degree()
    result = brooks_list_coloring(g)
    assert result.succeeded
    assert result.colors_used() <= delta


# -- Theorem 6.1 (nice lists) --------------------------------------------------------

def nice_lists_for(graph, palette_offset=0):
    """Construct the minimal nice list assignment: d(v) or d(v)+1 colors."""
    from repro.graphs.properties.cliques import is_clique

    lists = {}
    for v in graph:
        degree = graph.degree(v)
        size = degree
        if degree <= 2 or is_clique(graph, graph.neighbors(v)):
            size = degree + 1
        lists[v] = frozenset(range(1 + palette_offset, size + 1 + palette_offset))
    return ListAssignment(lists)


def test_is_nice_list_assignment():
    g = classic.cycle(6)
    assert is_nice_list_assignment(g, uniform_lists(g, 3))
    assert not is_nice_list_assignment(g, uniform_lists(g, 2))  # degree-2 vertices need 3
    grid = classic.grid_2d(3, 3)
    assert is_nice_list_assignment(grid, nice_lists_for(grid))


@pytest.mark.parametrize("maker,kwargs", [
    (classic.grid_2d, {"rows": 4, "cols": 5}),
    (planar.stacked_triangulation, {"n_vertices": 30, "seed": 4}),
    (classic.random_regular_graph, {"n": 24, "d": 4, "seed": 5}),
])
def test_theorem_6_1_nice_list_coloring(maker, kwargs):
    g = maker(**kwargs)
    lists = nice_lists_for(g)
    result = nice_list_coloring(g, lists)
    verify_list_coloring(g, result.coloring, lists)
    assert result.rounds > 0


def test_theorem_6_1_path_with_clique_attachments():
    """The Section 6 motivating example: cliques attached along a path."""
    g = classic.path(8)
    for i in range(8):
        g.add_edges([(i, ("a", i)), (i, ("b", i)), (("a", i), ("b", i))])
    lists = nice_lists_for(g)
    result = nice_list_coloring(g, lists)
    verify_list_coloring(g, result.coloring, lists)


def test_theorem_6_1_rejects_non_nice_lists():
    g = classic.cycle(6)
    with pytest.raises(ListAssignmentError):
        nice_list_coloring(g, uniform_lists(g, 2))


def test_theorem_6_1_empty_graph():
    from repro.graphs import Graph

    result = nice_list_coloring(Graph(), ListAssignment({}), check_nice=False)
    assert result.coloring == {}


# -- Corollary 2.11 (genus) -----------------------------------------------------------

def test_genus_color_budget_values():
    # torus / Klein bottle: Euler genus 2, Heawood number 7, improved budget 6
    assert genus_color_budget(2, improved=False) == 7
    assert genus_color_budget(2, improved=True) == 6
    # Euler genus 1 (projective plane): H = 6, bound (5+5)/2=5 integer -> improved 5
    assert genus_color_budget(1, improved=True) == 5


@pytest.mark.parametrize("improved,budget", [(False, 7), (True, 6)])
def test_corollary_2_11_toroidal_triangulation(improved, budget):
    g = surfaces.toroidal_triangular_grid(6, 6)
    result = color_embedded_graph(g, euler_genus=2, improved=improved)
    assert result.succeeded
    assert result.colors_used() <= budget


def test_corollary_2_11_k7_reports_clique():
    k7 = classic.complete_graph(7)  # K7 embeds on the torus
    result = color_embedded_graph(k7, euler_genus=2, improved=True, verify=False)
    assert not result.succeeded
    assert len(result.clique) == 7


def test_corollary_2_11_rejects_planar_genus():
    with pytest.raises(ValueError):
        color_embedded_graph(classic.cycle(5), euler_genus=0)
