"""Tests for the classic graph generators."""

import pytest

from repro.errors import GeneratorError
from repro.graphs.generators import classic
from repro.graphs.properties.gallai import is_gallai_tree
from repro.graphs.properties.girth import girth


def test_path_and_cycle():
    p = classic.path(5)
    assert p.number_of_edges() == 4
    c = classic.cycle(5)
    assert c.number_of_edges() == 5
    assert all(c.degree(v) == 2 for v in c)
    with pytest.raises(GeneratorError):
        classic.cycle(2)


def test_complete_graph():
    k5 = classic.complete_graph(5)
    assert k5.number_of_edges() == 10
    assert all(k5.degree(v) == 4 for v in k5)


def test_complete_bipartite():
    g = classic.complete_bipartite(3, 4)
    assert g.number_of_edges() == 12
    assert g.max_degree() == 4


def test_star():
    g = classic.star(7)
    assert g.degree(0) == 7
    assert g.number_of_edges() == 7


@pytest.mark.parametrize("n", [1, 2, 3, 10, 50])
def test_random_tree_is_tree(n):
    t = classic.random_tree(n, seed=n)
    assert t.number_of_vertices() == n
    assert t.number_of_edges() == n - 1
    assert t.is_connected()


def test_random_tree_deterministic_with_seed():
    a = classic.random_tree(20, seed=7)
    b = classic.random_tree(20, seed=7)
    assert a == b


def test_complete_binary_tree():
    t = classic.complete_binary_tree(3)
    assert t.number_of_vertices() == 15
    assert t.number_of_edges() == 14
    assert t.is_connected()


def test_grid_2d():
    g = classic.grid_2d(3, 4)
    assert g.number_of_vertices() == 12
    assert g.number_of_edges() == 3 * 3 + 2 * 4
    assert girth(g) == 4


def test_random_graph_gnp_density():
    g = classic.random_graph_gnp(30, 0.0, seed=1)
    assert g.number_of_edges() == 0
    g2 = classic.random_graph_gnp(10, 1.0, seed=1)
    assert g2.number_of_edges() == 45


@pytest.mark.parametrize("n,d", [(10, 3), (20, 4), (13, 4)])
def test_random_regular_graph(n, d):
    g = classic.random_regular_graph(n, d, seed=3)
    assert all(g.degree(v) == d for v in g)


def test_random_regular_graph_parity_check():
    with pytest.raises(GeneratorError):
        classic.random_regular_graph(7, 3)


def test_gallai_tree_generator():
    g = classic.gallai_tree([("clique", 4), ("odd_cycle", 5), ("clique", 3)])
    assert is_gallai_tree(g)


def test_gallai_tree_generator_validation():
    with pytest.raises(GeneratorError):
        classic.gallai_tree([("odd_cycle", 4)])
    with pytest.raises(GeneratorError):
        classic.gallai_tree([("clique", 1)])
    with pytest.raises(GeneratorError):
        classic.gallai_tree([("triangle_fan", 3)])


@pytest.mark.parametrize("seed", range(5))
def test_random_gallai_tree_is_gallai(seed):
    g = classic.random_gallai_tree(6, max_block_size=5, seed=seed)
    assert is_gallai_tree(g)


def test_book_of_cliques():
    g = classic.book_of_cliques(3, 4)
    assert g.degree(0) == 9
    assert is_gallai_tree(g)


def test_theta_graph_not_gallai():
    g = classic.theta_graph([2, 2, 3])
    assert not is_gallai_tree(g)
    assert g.degree("a") == 3
    assert g.degree("b") == 3


def test_theta_graph_validation():
    with pytest.raises(GeneratorError):
        classic.theta_graph([1, 1])
    with pytest.raises(GeneratorError):
        classic.theta_graph([2])
