"""Tests for density-related properties: mad, arboricity, planarity bounds, balls."""

import math
from fractions import Fraction

import pytest

from repro.graphs.generators import classic, planar, sparse, surfaces
from repro.graphs.properties.arboricity import (
    arboricity,
    arboricity_lower_bound,
    greedy_forest_decomposition,
)
from repro.graphs.properties.balls import (
    all_rooted_balls,
    ball_subgraph,
    rooted_ball,
    rooted_balls_isomorphic,
)
from repro.graphs.properties.degeneracy import degeneracy
from repro.graphs.properties.mad import (
    densest_subgraph,
    mad_lower_bound_greedy,
    maximum_average_degree,
    maximum_density,
)
from repro.graphs.properties.planarity import (
    heawood_colors,
    heawood_mad_bound,
    is_planar,
    mad_bound_from_girth,
)


# -- maximum average degree --------------------------------------------------

def test_mad_of_simple_graphs():
    assert maximum_average_degree(classic.path(10)) == pytest.approx(2 * 9 / 10)
    assert maximum_average_degree(classic.cycle(10)) == pytest.approx(2.0)
    assert maximum_average_degree(classic.complete_graph(5)) == pytest.approx(4.0)


def test_mad_detects_dense_subgraph():
    g = classic.complete_graph(5)
    # attach a long path: the densest subgraph is still the K5
    for i in range(20):
        g.add_edge(("p", i), ("p", i + 1))
    g.add_edge(0, ("p", 0))
    assert maximum_average_degree(g) == pytest.approx(4.0)
    density, vertices = maximum_density(g)
    assert density == Fraction(10, 5)
    assert set(range(5)) <= vertices


def test_mad_empty_and_edgeless():
    from repro.graphs import Graph

    assert maximum_average_degree(Graph()) == 0.0
    assert maximum_average_degree(Graph(vertices=[1, 2, 3])) == 0.0


def test_mad_vs_degeneracy_inequalities():
    for seed in range(3):
        g = planar.delaunay_triangulation(30, seed=seed)
        mad = maximum_average_degree(g)
        k = degeneracy(g)
        assert k <= mad + 1e-9 <= 2 * k + 1e-9


def test_planar_mad_below_six():
    g = planar.stacked_triangulation(40, seed=1)
    assert maximum_average_degree(g) < 6.0


def test_mad_greedy_lower_bound():
    g = planar.delaunay_triangulation(40, seed=2)
    exact = maximum_average_degree(g)
    lower = mad_lower_bound_greedy(g)
    assert lower <= exact + 1e-9
    assert lower >= exact / 2 - 1e-9


def test_densest_subgraph_returns_subgraph():
    g = classic.complete_bipartite(3, 3)
    sub = densest_subgraph(g)
    assert sub.number_of_vertices() >= 2
    assert sub.average_degree() == pytest.approx(maximum_average_degree(g))


# -- arboricity ---------------------------------------------------------------

def test_arboricity_of_forest_and_clique():
    tree = classic.random_tree(20, seed=3)
    estimate = arboricity(tree)
    assert estimate.exact == 1
    k5 = classic.complete_graph(5)
    estimate = arboricity(k5)
    assert estimate.lower == 3
    assert estimate.upper >= 3


def test_arboricity_lower_bound_union_of_forests():
    g = sparse.union_of_random_forests(30, 3, seed=4)
    assert arboricity_lower_bound(g) == 3


def test_forest_decomposition_is_valid():
    g = planar.stacked_triangulation(25, seed=5)
    forests = greedy_forest_decomposition(g)
    # every edge appears exactly once
    total = sum(len(f) for f in forests)
    assert total == g.number_of_edges()
    # each part is acyclic
    from repro.graphs import Graph

    for forest_edges in forests:
        forest = Graph(edges=forest_edges)
        assert forest.number_of_edges() == sum(
            len(c) - 1 for c in forest.connected_components()
        )


def test_nash_williams_relation_to_mad():
    # 2a - 2 <= ceil(mad) <= 2a
    for seed in range(3):
        g = sparse.union_of_random_forests(25, 2, seed=seed)
        estimate = arboricity(g)
        mad_ceil = math.ceil(maximum_average_degree(g) - 1e-9)
        assert 2 * estimate.lower - 2 <= mad_ceil <= 2 * estimate.upper


# -- planarity bounds ----------------------------------------------------------

def test_is_planar():
    assert is_planar(planar.delaunay_triangulation(30, seed=6))
    assert not is_planar(classic.complete_graph(5))
    assert not is_planar(classic.complete_bipartite(3, 3))


def test_mad_bound_from_girth():
    assert mad_bound_from_girth(3) == pytest.approx(6.0)
    assert mad_bound_from_girth(4) == pytest.approx(4.0)
    assert mad_bound_from_girth(6) == pytest.approx(3.0)
    assert mad_bound_from_girth(math.inf) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        mad_bound_from_girth(2)


def test_proposition_2_2_empirically():
    """Planar graphs of girth >= g have mad < 2g/(g-2)."""
    g1 = planar.stacked_triangulation(30, seed=7)
    assert maximum_average_degree(g1) < 6.0
    g2 = planar.grid_graph(5, 6)
    assert maximum_average_degree(g2) < 4.0
    g3 = planar.hexagonal_lattice(2, 3)
    assert maximum_average_degree(g3) < 3.0


def test_heawood_bounds():
    assert heawood_colors(1) == 6   # projective plane
    assert heawood_colors(2) == 7   # torus / Klein bottle
    assert heawood_mad_bound(2) == pytest.approx(6.0)
    with pytest.raises(ValueError):
        heawood_mad_bound(0)
    # the toroidal triangulation attains the genus-2 Heawood mad bound
    torus = surfaces.toroidal_triangular_grid(5, 5)
    assert maximum_average_degree(torus) <= heawood_mad_bound(2) + 1e-9


# -- balls ---------------------------------------------------------------------

def test_ball_subgraph():
    g = classic.grid_2d(5, 5)
    ball = ball_subgraph(g, (2, 2), 1)
    assert ball.number_of_vertices() == 5
    assert ball.number_of_edges() == 4


def test_rooted_ball_distances():
    g = classic.cycle(10)
    ball = rooted_ball(g, 0, 3)
    assert ball.distances[0] == 0
    assert max(ball.distances.values()) == 3
    assert ball.graph.number_of_vertices() == 7


def test_rooted_ball_isomorphism_positive_and_negative():
    grid = classic.grid_2d(7, 7)
    center_ball = rooted_ball(grid, (3, 3), 2)
    other_center = rooted_ball(grid, (3, 3), 2)
    corner_ball = rooted_ball(grid, (0, 0), 2)
    assert rooted_balls_isomorphic(center_ball, other_center)
    assert not rooted_balls_isomorphic(center_ball, corner_ball)


def test_rooted_ball_isomorphism_across_graphs():
    cyc = surfaces.cycle_power(25, 3)
    pth = surfaces.path_power(40, 3)
    b1 = rooted_ball(cyc, 0, 2)
    b2 = rooted_ball(pth, 20, 2)
    assert rooted_balls_isomorphic(b1, b2)


def test_all_rooted_balls_count():
    g = classic.path(6)
    assert len(all_rooted_balls(g, 1)) == 6
