"""Tests for the core Graph data structure."""

import pytest

from repro.errors import GraphError
from repro.graphs import Graph
from repro.graphs.generators import classic


def test_empty_graph():
    g = Graph()
    assert len(g) == 0
    assert g.number_of_edges() == 0
    assert g.average_degree() == 0.0
    assert g.is_empty()
    assert g.is_connected()  # vacuously


def test_add_vertices_and_edges():
    g = Graph()
    g.add_edge(1, 2)
    g.add_edge(2, 3)
    assert set(g.vertices()) == {1, 2, 3}
    assert g.number_of_edges() == 2
    assert g.has_edge(1, 2) and g.has_edge(2, 1)
    assert not g.has_edge(1, 3)
    assert g.degree(2) == 2


def test_add_vertex_idempotent():
    g = Graph()
    g.add_vertex("a")
    g.add_vertex("a")
    assert len(g) == 1


def test_self_loop_rejected():
    g = Graph()
    with pytest.raises(GraphError):
        g.add_edge(1, 1)


def test_parallel_edges_collapse():
    g = Graph()
    g.add_edge(1, 2)
    g.add_edge(1, 2)
    assert g.number_of_edges() == 1


def test_remove_edge_and_vertex():
    g = Graph(edges=[(1, 2), (2, 3), (1, 3)])
    g.remove_edge(1, 2)
    assert not g.has_edge(1, 2)
    g.remove_vertex(3)
    assert 3 not in g
    assert g.number_of_edges() == 0
    with pytest.raises(GraphError):
        g.remove_vertex(99)
    with pytest.raises(GraphError):
        g.remove_edge(1, 2)


def test_degrees_and_average_degree():
    g = classic.star(5)
    assert g.degree(0) == 5
    assert g.max_degree() == 5
    assert g.min_degree() == 1
    assert g.average_degree() == pytest.approx(2 * 5 / 6)


def test_subgraph_induced():
    g = classic.cycle(6)
    sub = g.subgraph([0, 1, 2, 99])
    assert set(sub.vertices()) == {0, 1, 2}
    assert sub.number_of_edges() == 2  # edges (0,1), (1,2); not (2,0)


def test_copy_is_independent():
    g = classic.path(4)
    h = g.copy()
    h.add_edge(0, 3)
    assert not g.has_edge(0, 3)
    assert h.has_edge(0, 3)


def test_connected_components():
    g = Graph(edges=[(1, 2), (3, 4)], vertices=[5])
    comps = g.connected_components()
    assert sorted(sorted(map(str, c)) for c in comps) == [["1", "2"], ["3", "4"], ["5"]]
    assert not g.is_connected()
    assert classic.cycle(5).is_connected()


def test_bfs_distances_and_ball():
    g = classic.path(10)
    dist = g.bfs_distances(0)
    assert dist[9] == 9
    truncated = g.bfs_distances(0, radius=3)
    assert set(truncated) == {0, 1, 2, 3}
    assert g.ball(5, 2) == {3, 4, 5, 6, 7}
    with pytest.raises(GraphError):
        g.bfs_distances(99)


def test_networkx_roundtrip():
    g = classic.cycle(7)
    nxg = g.to_networkx()
    back = Graph.from_networkx(nxg)
    assert back == g


def test_relabel_to_integers():
    g = classic.grid_2d(3, 3)
    relabeled, mapping = g.relabel_to_integers()
    assert set(relabeled.vertices()) == set(range(1, 10))
    assert relabeled.number_of_edges() == g.number_of_edges()
    assert len(mapping) == 9


def test_relabeled_mapping():
    g = classic.path(3)
    h = g.relabeled({0: "a", 1: "b", 2: "c"})
    assert h.has_edge("a", "b") and h.has_edge("b", "c")


def test_equality():
    assert classic.path(4) == classic.path(4)
    assert classic.path(4) != classic.cycle(4)


def test_edges_listed_once():
    g = classic.complete_graph(5)
    assert len(g.edges()) == 10
