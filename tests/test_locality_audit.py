"""Locality audits: the round engine's node programs are locality-faithful.

Theorem 1.5's indistinguishability argument says an r-round LOCAL
algorithm's output at a node is a function of its radius-r ball.  The
auditor of :mod:`repro.verify.locality` re-runs programs on r-ball
truncations (original identifiers, original announced ``n``) and asserts
per-node outputs are invariant.  This suite runs the audit over random
sparse and planar corpus instances for all four ported algorithm families
— Cole–Vishkin, Linial (+ color reduction), the greedy baseline and
Barenboim–Elkin's slot selection — on both the per-node and the batched
engines, so a "vectorization" that quietly reads global structure can
never land.
"""

import random
from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import default_corpus
from repro.distributed import h_partition
from repro.distributed.barenboim_elkin import BatchSlotColorSelection
from repro.distributed.cole_vishkin import (
    BatchColeVishkinForestColoring,
    ColeVishkinForestColoring,
)
from repro.distributed.greedy_baseline import (
    BatchGreedyLocalMaximaAlgorithm,
    GreedyLocalMaximaAlgorithm,
)
from repro.distributed.linial import (
    BatchColorReductionAlgorithm,
    BatchLinialColoringAlgorithm,
    ColorReductionAlgorithm,
    LinialColoringAlgorithm,
    delta_plus_one_coloring,
)
from repro.graphs.generators import classic, planar, sparse
from repro.local.network import Network
from repro.verify import audit_locality


def _instance(seed: int):
    """A random sparse or planar instance (frozen)."""
    rng = random.Random(seed)
    if rng.random() < 0.5:
        n = rng.randint(24, 60)
        return sparse.union_of_random_forests(n, 2, seed=seed).freeze()
    n = rng.randint(20, 50)
    return planar.stacked_triangulation(n, seed=seed).freeze()


def _sample(graph, seed: int, k: int = 4):
    rng = random.Random(seed)
    vertices = graph.vertices()
    return vertices if len(vertices) <= k else rng.sample(vertices, k)


def _bfs_parents(graph):
    parents = {}
    for v in graph:
        if v in parents:
            continue
        parents[v] = None
        queue = deque([v])
        while queue:
            u = queue.popleft()
            for w in graph.neighbors(u):
                if w not in parents:
                    parents[w] = u
                    queue.append(w)
    return parents


def _assert_audit(graph, factory, inputs, vertices, network=None):
    report = audit_locality(
        graph, factory, inputs, vertices=vertices, network=network
    )
    assert report.ok, report.violations


# ---------------------------------------------------------------------------
# Cole–Vishkin (per-node and batched) on BFS forests of the instances
# ---------------------------------------------------------------------------

@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_cole_vishkin_locality(seed):
    graph = _instance(seed)
    forest = classic.empty_graph(0)
    for v in graph:
        forest.add_vertex(v)
    parents = _bfs_parents(graph)
    forest.add_edges((v, p) for v, p in parents.items() if p is not None)
    frozen = forest.freeze()
    network = Network(frozen)
    inputs = {
        v: None if p is None else network.identifier_of[p]
        for v, p in parents.items()
    }
    audited = _sample(frozen, seed)
    _assert_audit(frozen, ColeVishkinForestColoring, inputs, audited, network)
    _assert_audit(frozen, BatchColeVishkinForestColoring, inputs, audited, network)


def test_cole_vishkin_locality_long_path():
    """A path much longer than the CV round count: balls are genuine
    truncations (29 vertices of 400), not the whole graph."""
    graph = classic.path(400).freeze()
    network = Network(graph)
    inputs = {
        v: None if v == 0 else network.identifier_of[v - 1] for v in graph
    }
    for factory in (ColeVishkinForestColoring, BatchColeVishkinForestColoring):
        report = audit_locality(
            graph, factory, inputs, vertices=[0, 57, 200, 399], network=network
        )
        assert report.ok, report.violations
        assert report.rounds + 1 < 400  # the audit really truncated


# ---------------------------------------------------------------------------
# greedy baseline (per-node and batched)
# ---------------------------------------------------------------------------

@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_greedy_locality(seed):
    graph = _instance(seed)
    delta = max(1, graph.max_degree())
    inputs = {v: delta for v in graph}
    audited = _sample(graph, seed)
    _assert_audit(graph, GreedyLocalMaximaAlgorithm, inputs, audited)
    _assert_audit(graph, BatchGreedyLocalMaximaAlgorithm, inputs, audited)


# ---------------------------------------------------------------------------
# Linial + color reduction (per-node and batched)
# ---------------------------------------------------------------------------

@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_linial_locality(seed):
    # n >= 150 so the Linial schedule is non-empty (below ~q^2 the
    # identifier space is already small enough and zero rounds run)
    n = 150 + (seed % 80)
    graph = sparse.union_of_random_forests(n, 2, seed=seed).freeze()
    delta = max(1, graph.max_degree())
    inputs = {v: delta for v in graph}
    audited = _sample(graph, seed)
    _assert_audit(graph, LinialColoringAlgorithm, inputs, audited)
    _assert_audit(graph, BatchLinialColoringAlgorithm, inputs, audited)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_color_reduction_locality(seed):
    graph = _instance(seed)
    network = Network(graph)
    n = len(graph)
    delta = max(1, graph.max_degree())
    # identifiers form a proper n-coloring: the reduction's legal input
    inputs = {
        v: (network.identifier_of[v] - 1, n, delta) for v in graph
    }
    audited = _sample(graph, seed)
    _assert_audit(graph, ColorReductionAlgorithm, inputs, audited, network)
    _assert_audit(graph, BatchColorReductionAlgorithm, inputs, audited, network)


# ---------------------------------------------------------------------------
# Barenboim–Elkin slot selection (the batched engine's coloring phase)
# ---------------------------------------------------------------------------

@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_barenboim_elkin_slot_selection_locality(seed):
    pytest.importorskip("numpy")
    rng = random.Random(seed)
    n = rng.randint(30, 70)
    graph = sparse.union_of_random_forests(n, 2, seed=seed).freeze()
    partition = h_partition(graph, arboricity=2)
    palette_size = 7  # floor((2+1)*2) + 1

    slot_of = {}
    slot_counts = [1] * len(partition.classes)
    for class_index in range(len(partition.classes) - 1, -1, -1):
        members = partition.classes[class_index]
        slots = delta_plus_one_coloring(graph.subgraph(members), batched=True)
        slot_counts[class_index] = max(slots.coloring.values(), default=0) + 1
        for v in members:
            slot_of[v] = (class_index, slots.coloring[v])
    announced = tuple(slot_counts)
    inputs = {
        v: (class_index, slot, palette_size, announced)
        for v, (class_index, slot) in slot_of.items()
    }
    _assert_audit(graph, BatchSlotColorSelection, inputs, _sample(graph, seed))


def test_corpus_standard_instances_greedy_locality():
    """Named corpus instances pass the audit for the greedy baseline (the
    cheapest sweep across the generator matrix)."""
    from repro.corpus import standard_instance

    corpus = default_corpus()
    for name in ("planar-tri-60-s3", "forest-union-80-a2-s1",
                 "k-tree-48-k3-s2", "power-law-72-m2-s4", "grid-6x10"):
        graph = corpus.frozen(standard_instance(name))
        delta = max(1, graph.max_degree())
        inputs = {v: delta for v in graph}
        _assert_audit(
            graph, BatchGreedyLocalMaximaAlgorithm, inputs, _sample(graph, 1)
        )
