"""Million-node scale infrastructure: npz form, streaming generators, fan-out.

Everything here runs at toy sizes — the point is *parity*, not scale:
``from_edge_array`` must agree with the dict-of-sets path, a memory-mapped
``load_npz`` graph must be bit-identical to the in-memory one that wrote
it, the vectorized CSR digest must equal the scalar digest, and a graph
attached from shared memory in a real pool worker must hash to the digest
the parent published.  The n = 10^6 runs themselves live in the ``scale``
scenario (``BENCH_scale.json``); these tests are why its numbers can be
trusted.
"""

import os
import tempfile
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ExperimentRunner, shared
from repro.corpus import InstanceCorpus, InstanceSpec, graph_digest
from repro.errors import GraphError
from repro.graphs.frozen import HAS_NUMPY, FrozenGraph, freeze
from repro.graphs.generators import streaming
from repro.graphs.graph import Graph

needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="requires numpy backend")

# one small spec per streaming family: (builder kwargs are positional-ready)
_FAMILY_SPECS = [
    ("stream-degenerate", {"n": 60, "degeneracy": 3, "seed": 7}),
    ("stream-forest", {"n": 50, "arboricity": 2, "seed": 3}),
    ("stream-k-tree", {"n": 40, "k": 3, "seed": 5}),
    ("stream-power-law", {"n": 45, "m": 2, "seed": 9}),
    ("stream-torus", {"rows": 5, "cols": 6, "shuffle_seed": 1}),
]


def _build(family: str, **kwargs) -> FrozenGraph:
    return streaming.STREAMING_BUILDERS[family](**kwargs)


def _thaw(graph: FrozenGraph) -> Graph:
    """Rebuild the same labelled graph on the dict-of-sets substrate."""
    g = Graph(vertices=graph.vertices())
    for u, v in graph.edges():
        g.add_edge(u, v)
    return g


# ---------------------------------------------------------------------------
# from_edge_array parity with the Graph path
# ---------------------------------------------------------------------------

@needs_numpy
def test_from_edge_array_matches_graph_path():
    import numpy as np

    # duplicates, self-loop and both orientations must all collapse away
    edges = np.array(
        [[0, 1], [1, 0], [1, 2], [2, 3], [3, 3], [0, 1], [4, 2]], dtype=np.int64
    )
    via_array = FrozenGraph.from_edge_array(5, edges, name="t")
    g = Graph(vertices=range(5))
    for u, v in [(0, 1), (1, 2), (2, 3), (4, 2)]:
        g.add_edge(u, v)
    via_graph = freeze(g)
    assert via_array.number_of_edges() == 4
    assert graph_digest(via_array) == graph_digest(via_graph)
    assert via_array.degeneracy() == via_graph.degeneracy()
    assert {frozenset(e) for e in via_array.edges()} == {
        frozenset(e) for e in via_graph.edges()
    }


@needs_numpy
@pytest.mark.parametrize("family,kwargs", _FAMILY_SPECS)
def test_streaming_builders_produce_identity_frozen_graphs(family, kwargs):
    graph = _build(family, **kwargs)
    assert isinstance(graph, FrozenGraph)
    assert graph.identity_labels
    assert list(graph.vertices()) == list(range(len(graph)))
    # every certified structural bound in metadata must actually hold
    bound = graph.metadata.get("degeneracy_upper_bound")
    if bound is not None:
        assert graph.degeneracy() <= bound


# ---------------------------------------------------------------------------
# npz round trip + memmap parity (hypothesis over the generator matrix)
# ---------------------------------------------------------------------------

@needs_numpy
@settings(max_examples=15, deadline=None)
@given(
    index=st.integers(0, len(_FAMILY_SPECS) - 1),
    seed=st.integers(0, 10_000),
)
def test_npz_roundtrip_and_memmap_parity(index, seed):
    family, kwargs = _FAMILY_SPECS[index]
    kwargs = dict(kwargs)
    if "seed" in kwargs:
        kwargs["seed"] = seed
    else:  # stream-torus: vary the shuffle instead
        kwargs["shuffle_seed"] = seed
    graph = _build(family, **kwargs)

    fd, raw = tempfile.mkstemp(suffix=".npz")
    os.close(fd)
    path = Path(raw)
    try:
        graph.save_npz(path)
        mapped = FrozenGraph.load_npz(path, mmap=True)
        loaded = FrozenGraph.load_npz(path, mmap=False)
        for clone in (mapped, loaded):
            assert len(clone) == len(graph)
            assert clone.number_of_edges() == graph.number_of_edges()
            assert clone.identity_labels
            assert graph_digest(clone) == graph_digest(graph)
            assert clone.degeneracy() == graph.degeneracy()
            assert clone.name == graph.name
            assert sorted(clone.neighbors(0)) == sorted(graph.neighbors(0))
    finally:
        path.unlink(missing_ok=True)


# ---------------------------------------------------------------------------
# digest: vectorized fast path == scalar slow path, stable across save/load
# ---------------------------------------------------------------------------

@needs_numpy
@pytest.mark.parametrize("family,kwargs", _FAMILY_SPECS)
def test_digest_fast_path_matches_slow_path(family, kwargs):
    graph = _build(family, **kwargs)
    # identity-labelled frozen graphs take the vectorized CSR path; the
    # rebuilt dict-of-sets graph takes the scalar repr path — same stream
    assert graph_digest(graph) == graph_digest(_thaw(graph))


@needs_numpy
def test_digest_fast_path_edge_cases():
    import numpy as np

    empty = FrozenGraph.from_edge_array(0, np.empty((0, 2), dtype=np.int64))
    lonely = FrozenGraph.from_edge_array(1, np.empty((0, 2), dtype=np.int64))
    # the decimal-key packing must survive the "1" < "10" lexicographic
    # corner: vertex 1 sorts before 10 even though 10 > 9
    wide = FrozenGraph.from_edge_array(
        12, np.array([[1, 10], [9, 10], [0, 11]], dtype=np.int64)
    )
    for g in (empty, lonely, wide):
        assert graph_digest(g) == graph_digest(_thaw(g))


@needs_numpy
def test_digest_stable_across_save_load(tmp_path):
    graph = streaming.stream_degenerate_graph(500, 3, seed=11)
    # golden pin: the content address the corpus npz cache files carry in
    # their names — changing the generator or the digest changes this
    assert graph_digest(graph) == "20fa6613ade5f408"
    path = tmp_path / "g.npz"
    graph.save_npz(path)
    assert graph_digest(FrozenGraph.load_npz(path)) == "20fa6613ade5f408"


# ---------------------------------------------------------------------------
# shared-memory publish / attach
# ---------------------------------------------------------------------------

def _worker_attach(handle):
    """Pool worker: attach through the shared transport and fingerprint it.

    Fork-started workers inherit the parent's in-process registries, which
    would satisfy ``attach`` without touching shared memory — forget them
    first so this exercises what a spawn-fresh worker would do.
    """
    shared._LOCAL.pop(handle.digest, None)
    publication = shared._PUBLISHED.pop(handle.digest, None)
    if publication is not None and publication.block is not None:
        publication.block.close()
    graph = shared.attach(handle)
    try:
        return {
            "n": len(graph),
            "m": graph.number_of_edges(),
            "degeneracy": graph.degeneracy(),
            "digest": graph_digest(graph),
            "identity": graph.identity_labels,
        }
    finally:
        del graph
        shared.detach_all()


@needs_numpy
def test_publish_is_idempotent_and_local_attach_is_zero_copy():
    graph = streaming.stream_degenerate_graph(200, 3, seed=2)
    handle = shared.publish(graph)
    try:
        assert handle.kind in {"shm", "local"}
        assert handle.n == len(graph)
        assert handle.num_slots == graph.number_of_edges() * 2
        assert shared.publish(graph, digest=handle.digest) is handle
        # same-process attach resolves through the local registry: the
        # very object, no copy at all
        assert shared.attach(handle) is graph
        assert handle.digest in shared.published_digests()
    finally:
        shared.release(handle.digest)
    assert handle.digest not in shared.published_digests()


@needs_numpy
def test_shared_memory_attach_in_real_process_pool():
    graph = streaming.stream_k_tree(150, 3, seed=4)
    handle = shared.publish(graph)
    if handle.kind != "shm":
        pytest.skip("shared memory unavailable in this sandbox")
    try:
        try:
            with ProcessPoolExecutor(max_workers=2) as pool:
                results = [
                    pool.submit(_worker_attach, handle).result(timeout=60)
                    for _ in range(2)
                ]
        except (OSError, BrokenExecutor, ImportError):
            pytest.skip("sandbox cannot fork a process pool")
        for result in results:
            assert result["n"] == len(graph)
            assert result["m"] == graph.number_of_edges()
            assert result["degeneracy"] == graph.degeneracy()
            assert result["digest"] == handle.digest == graph_digest(graph)
            assert result["identity"]
    finally:
        shared.release(handle.digest)


@needs_numpy
def test_npz_handle_attach_validates_digest(tmp_path):
    graph = streaming.stream_forest_union(80, 2, seed=6)
    path = tmp_path / "g.npz"
    graph.save_npz(path)
    digest = graph_digest(graph)
    good = shared.SharedGraphHandle(
        kind="npz", digest=digest, n=len(graph),
        num_slots=graph.number_of_edges() * 2, location=str(path),
    )
    try:
        clone = shared.attach(good)
        assert graph_digest(clone) == digest
        bad = shared.SharedGraphHandle(
            kind="npz", digest="0" * 16, n=len(graph),
            num_slots=graph.number_of_edges() * 2, location=str(path),
        )
        with pytest.raises(GraphError, match="digest"):
            shared.attach(bad)
    finally:
        shared.detach_all()


# ---------------------------------------------------------------------------
# corpus npz cache: content addressing, LRU cap, prune
# ---------------------------------------------------------------------------

@needs_numpy
def test_corpus_caches_streaming_instances_as_npz(tmp_path):
    spec = InstanceSpec.of("stream-degenerate", n=120, degeneracy=3, seed=1)
    corpus = InstanceCorpus(cache_dir=tmp_path)
    graph = corpus.frozen(spec)
    path = corpus.npz_path(spec)
    assert path is not None and path.suffix == ".npz"
    assert path.stem.rsplit("-", 1)[-1] == graph_digest(graph)
    # a fresh corpus instance warm-loads the memory-mapped cached file
    warm = InstanceCorpus(cache_dir=tmp_path).frozen(spec)
    assert graph_digest(warm) == graph_digest(graph)
    # corruption is detected by the content address and regenerated
    path.write_bytes(b"not an npz")
    regenerated = InstanceCorpus(cache_dir=tmp_path).frozen(spec)
    assert graph_digest(regenerated) == graph_digest(graph)


@needs_numpy
def test_corpus_cache_cap_evicts_least_recently_used(tmp_path):
    specs = [
        InstanceSpec.of("stream-degenerate", n=100, degeneracy=2, seed=s)
        for s in range(3)
    ]
    corpus = InstanceCorpus(cache_dir=tmp_path)
    paths = []
    for stamp, spec in enumerate(specs):
        corpus.frozen(spec)
        path = corpus.npz_path(spec)
        os.utime(path, (stamp, stamp))  # deterministic LRU order
        paths.append(path)
    total = corpus.cache_size_bytes()
    assert total == sum(p.stat().st_size for p in paths)

    # cap just below the total: exactly the oldest entry must go
    capped = InstanceCorpus(
        cache_dir=tmp_path, max_bytes=total - 1
    )
    evicted = capped.prune()
    assert evicted == [paths[0]]
    assert not paths[0].exists() and paths[1].exists() and paths[2].exists()
    # prune without any cap is a no-op
    assert InstanceCorpus(cache_dir=tmp_path).prune() == []
    # an explicit limit of 0 clears the cache
    assert InstanceCorpus(cache_dir=tmp_path).prune(max_bytes=0) != []
    assert InstanceCorpus(cache_dir=tmp_path).cache_files() == []


def test_corpus_cap_reads_environment(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CORPUS_MAX_BYTES", "12345")
    assert InstanceCorpus(cache_dir=tmp_path).max_bytes == 12345
    monkeypatch.setenv("REPRO_CORPUS_MAX_BYTES", "not-a-number")
    assert InstanceCorpus(cache_dir=tmp_path).max_bytes is None


# ---------------------------------------------------------------------------
# artifact satellites: peak RSS on rows, ISO timestamp + schema minor
# ---------------------------------------------------------------------------

def test_rows_carry_peak_rss_and_artifact_carries_iso_timestamp():
    import datetime

    runner = ExperimentRunner("rss-probe")
    row = runner.run("g", "a", lambda: {"value": 1})
    peak = row.metrics.get("peak_rss_bytes")
    if peak is not None:  # resource module present (POSIX)
        assert isinstance(peak, int) and peak > 0
    payload = runner.to_json_dict()
    assert payload["schema_minor"] >= 1
    stamp = datetime.datetime.fromisoformat(payload["generated_at_iso"])
    assert stamp.tzinfo is not None


@needs_numpy
def test_scale_scenario_rows_are_digest_checked(tmp_path):
    from repro.scenarios import run_scenario

    run = run_scenario(
        "scale", smoke=True, workers=1, out=tmp_path,
        overrides={"sizes": (400,), "roundtrip_max_n": 400},
    )
    assert run.ok and run.failures == []
    by_algorithm = {row.algorithm: row for row in run.runner.rows}
    peel = by_algorithm["degeneracy peel [shared]"]
    assert peel.metrics["digest_ok"] and peel.metrics["valid"]
    assert peel.metrics["transport"] in {"shm", "npz", "local"}
    coloring = by_algorithm["batched greedy Delta+1 [shared]"]
    assert coloring.metrics["valid"]
    assert coloring.metrics["colors"] <= coloring.metrics["budget"]
    assert run.runner.metadata.get("parent_peak_rss_bytes", 1) > 0
    # the scenario must leave nothing published behind
    assert shared.published_digests() == []


# ---------------------------------------------------------------------------
# identity-label index
# ---------------------------------------------------------------------------

@needs_numpy
def test_identity_index_behaves_like_a_dict():
    graph = streaming.stream_degenerate_graph(30, 2, seed=1)
    index = graph._index
    assert len(index) == 30
    assert index[7] == 7 and index.get(7) == 7
    assert index[7.0] == 7  # hashes like the int, resolves like the int
    assert 29 in index and 30 not in index and -1 not in index
    assert "x" not in index and index.get("x", "d") == "d"
    with pytest.raises(KeyError):
        index[30]
    assert list(index) == list(range(30))


def test_non_identity_labels_fall_back_to_real_dict():
    g = Graph(vertices=["a", "b"])
    g.add_edge("a", "b")
    frozen = freeze(g)
    assert not frozen.identity_labels


# ---------------------------------------------------------------------------
# corpus cache-dir creation race (regression: concurrent warm of one family)
# ---------------------------------------------------------------------------

def _worker_warm_corpus(cache_dir: str) -> str:
    """Pool worker: warm the same streaming spec into a shared cache dir.

    Every worker races to create ``cache_dir`` (which does not exist when
    the pool starts) and to store the same npz — the regression scenario
    behind :meth:`InstanceCorpus._ensure_cache_dir`.
    """
    corpus = InstanceCorpus(cache_dir=cache_dir)
    spec = InstanceSpec.of("stream-degenerate", n=400, degeneracy=2, seed=9)
    return graph_digest(corpus.frozen(spec))


@needs_numpy
def test_corpus_cache_dir_creation_races_are_benign(tmp_path):
    # the directory (including a parent) must not exist yet: creation itself
    # is the contended step
    cache_dir = tmp_path / "deep" / "corpus-cache"
    try:
        with ProcessPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(_worker_warm_corpus, str(cache_dir)) for _ in range(4)
            ]
            digests = [f.result(timeout=120) for f in futures]
    except (OSError, BrokenExecutor, ImportError):
        pytest.skip("sandbox cannot fork a process pool")
    assert len(set(digests)) == 1
    files = list(cache_dir.glob("stream-degenerate-*.npz"))
    assert len(files) == 1  # atomic replace: exactly one winner, no .tmp litter
    assert not list(cache_dir.glob("*.tmp.*"))
    # the surviving file is loadable and content-correct
    warm = InstanceCorpus(cache_dir=cache_dir)
    spec = InstanceSpec.of("stream-degenerate", n=400, degeneracy=2, seed=9)
    assert graph_digest(warm.frozen(spec)) == digests[0]


@needs_numpy
def test_corpus_same_process_concurrent_stores_use_unique_tmp_names(tmp_path):
    # one process, many threads (the serving layer's warm pattern): pid-only
    # tmp names would collide; the per-process serial keeps them distinct
    from concurrent.futures import ThreadPoolExecutor

    cache_dir = tmp_path / "thread-cache"
    spec = InstanceSpec.of("stream-forest", n=300, arboricity=2, seed=11)

    def warm() -> str:
        corpus = InstanceCorpus(cache_dir=cache_dir)  # no shared memo
        return graph_digest(corpus.frozen(spec))

    with ThreadPoolExecutor(max_workers=6) as pool:
        digests = [f.result(timeout=120) for f in [pool.submit(warm) for _ in range(6)]]
    assert len(set(digests)) == 1
    assert len(list(cache_dir.glob("stream-forest-*.npz"))) == 1
    assert not list(cache_dir.glob("*.tmp.*"))


def test_corpus_degrades_gracefully_when_cache_dir_is_unusable(tmp_path):
    # a *file* squatting on the cache path: creation fails, generation must not
    squatter = tmp_path / "not-a-dir"
    squatter.write_text("occupied")
    corpus = InstanceCorpus(cache_dir=squatter)
    spec = InstanceSpec.of("path", n=12)
    graph = corpus.build(spec)
    assert graph.number_of_vertices() == 12
    assert squatter.read_text() == "occupied"  # nothing clobbered it


# ---------------------------------------------------------------------------
# the 10^5 tier (slow: run with `-m slow`)
# ---------------------------------------------------------------------------

@pytest.mark.slow
@needs_numpy
def test_stream_degenerate_100k_peel_and_digest_fast_path():
    graph = streaming.stream_degenerate_graph(100_000, 3, seed=1)
    assert len(graph) == 100_000
    assert graph.degeneracy() <= 3
    # fast-path digest agrees with itself across an npz round trip at scale
    with tempfile.TemporaryDirectory() as d:
        path = Path(d) / "g.npz"
        graph.save_npz(path)
        mapped = FrozenGraph.load_npz(path, mmap=True)
        assert graph_digest(mapped) == graph_digest(graph)
        assert mapped.degeneracy() == graph.degeneracy()


@pytest.mark.slow
@needs_numpy
def test_shared_fanout_100k_roundtrips_degeneracy():
    graph = streaming.stream_forest_union(100_000, 2, seed=3)
    handle = shared.publish(graph)
    try:
        attached = shared.attach(handle)
        assert attached is graph  # local registry: literally zero copies
        # arboricity a bounds degeneracy by 2a - 1
        assert attached.degeneracy() <= 3
        assert handle.num_slots == 2 * graph.number_of_edges()
    finally:
        shared.release(handle.digest)
