"""Tests for the constructive Theorem 1.1 solver (Borodin / Erdős–Rubin–Taylor)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.assignment import ListAssignment, uniform_lists
from repro.coloring.borodin_ert import (
    degree_list_coloring,
    extend_partial_coloring,
    is_degree_choosable_instance,
)
from repro.coloring.verification import verify_list_coloring
from repro.errors import ColoringError
from repro.graphs.generators import classic, planar
from repro.graphs.graph import Graph


def degree_lists(graph, palette_offset=0):
    """Every vertex gets exactly d(v) colors {1..d(v)} (shifted by offset)."""
    return ListAssignment(
        {
            v: frozenset(range(1 + palette_offset, graph.degree(v) + 1 + palette_offset))
            for v in graph
        }
    )


# -- slack case ----------------------------------------------------------------

def test_slack_vertex_greedy_on_path():
    p = classic.path(30)
    lists = uniform_lists(p, 2)  # endpoints have slack (degree 1 < 2)
    coloring = degree_list_coloring(p, lists)
    verify_list_coloring(p, coloring, lists)


def test_slack_vertex_greedy_on_tree():
    t = classic.random_tree(30, seed=1)
    # lists of size exactly d(v), except one slack vertex with d(v)+1 colors
    lists_dict = {v: frozenset(range(1, t.degree(v) + 1)) for v in t}
    slack = max(t.vertices(), key=t.degree)
    lists_dict[slack] = frozenset(range(1, t.degree(slack) + 2))
    lists = ListAssignment(lists_dict)
    coloring = degree_list_coloring(t, lists)
    verify_list_coloring(t, coloring, lists)


def test_single_vertex_and_empty():
    g = Graph(vertices=["x"])
    coloring = degree_list_coloring(g, ListAssignment({"x": {5}}))
    assert coloring == {"x": 5}
    assert degree_list_coloring(Graph(), ListAssignment({})) == {}


def test_rejects_too_small_lists():
    g = classic.cycle(4)
    with pytest.raises(ColoringError):
        degree_list_coloring(g, ListAssignment({v: {1} for v in g}))


# -- even cycles ----------------------------------------------------------------

def test_even_cycle_equal_lists():
    g = classic.cycle(8)
    lists = uniform_lists(g, 2)
    coloring = degree_list_coloring(g, lists)
    verify_list_coloring(g, coloring, lists)


def test_even_cycle_different_lists():
    g = classic.cycle(6)
    lists = ListAssignment(
        {0: {1, 2}, 1: {2, 3}, 2: {3, 4}, 3: {4, 5}, 4: {5, 6}, 5: {6, 1}}
    )
    coloring = degree_list_coloring(g, lists)
    verify_list_coloring(g, coloring, lists)


# -- 2-connected non-Gallai blocks ------------------------------------------------

def test_theta_graph_with_tight_lists():
    g = classic.theta_graph([2, 2, 2])
    lists = degree_lists(g)
    assert is_degree_choosable_instance(g, lists)
    coloring = degree_list_coloring(g, lists)
    verify_list_coloring(g, coloring, lists)


def test_complete_bipartite_with_tight_lists():
    g = classic.complete_bipartite(3, 3)
    lists = degree_lists(g)
    coloring = degree_list_coloring(g, lists)
    verify_list_coloring(g, coloring, lists)


def test_grid_with_degree_lists():
    g = classic.grid_2d(3, 4)
    lists = degree_lists(g)
    coloring = degree_list_coloring(g, lists)
    verify_list_coloring(g, coloring, lists)


def test_disjoint_lists_fallback():
    """Force the residual case: the two branches of a theta have disjoint palettes."""
    g = classic.theta_graph([2, 2, 2])
    lists = {}
    for v in g:
        if v in ("a", "b"):
            lists[v] = {1, 2, 3}
        else:
            lists[v] = None
    path_vertices = sorted(v for v in g if v not in ("a", "b"))
    palettes = [{1, 4}, {2, 5}, {3, 6}]
    for v, palette in zip(path_vertices, palettes):
        lists[v] = palette
    assignment = ListAssignment(lists)
    coloring = degree_list_coloring(g, assignment)
    verify_list_coloring(g, coloring, assignment)


# -- block-tree peeling -----------------------------------------------------------

def test_clique_attached_to_even_cycle():
    g = classic.cycle(6)
    g.add_edges([(0, "k1"), (0, "k2"), ("k1", "k2")])
    lists = degree_lists(g)
    coloring = degree_list_coloring(g, lists)
    verify_list_coloring(g, coloring, lists)


def test_gallai_tree_with_slack_vertex():
    """A Gallai tree is fine as long as one vertex has slack."""
    g = classic.gallai_tree([("clique", 4), ("odd_cycle", 5)])
    lists = {v: frozenset(range(1, g.degree(v) + 1)) for v in g}
    slack_vertex = next(iter(g))
    lists[slack_vertex] = frozenset(range(1, g.degree(slack_vertex) + 2))
    assignment = ListAssignment(lists)
    coloring = degree_list_coloring(g, assignment)
    verify_list_coloring(g, coloring, assignment)


def test_gallai_tree_tight_lists_unsolvable_raises():
    """K_4 with identical 3-lists everywhere has no coloring — a clear error."""
    g = classic.complete_graph(4)
    with pytest.raises(ColoringError):
        degree_list_coloring(g, uniform_lists(g, 3))


def test_odd_cycle_tight_equal_lists_raises():
    g = classic.cycle(5)
    with pytest.raises(ColoringError):
        degree_list_coloring(g, uniform_lists(g, 2))


def test_gallai_tree_tight_but_lucky_lists_still_solved():
    """A Gallai tree with tight lists that happen to admit a coloring."""
    g = classic.cycle(5)
    lists = ListAssignment({0: {1, 2}, 1: {2, 3}, 2: {3, 1}, 3: {1, 2}, 4: {2, 3}})
    coloring = degree_list_coloring(g, lists)
    verify_list_coloring(g, coloring, lists)


# -- extension helper --------------------------------------------------------------

def test_extend_partial_coloring():
    g = classic.grid_2d(3, 3)
    lists = uniform_lists(g, 4)
    partial = {(0, 0): 1, (0, 1): 2, (0, 2): 1}
    uncolored = {v for v in g if v not in partial}
    full = extend_partial_coloring(g, lists, partial, uncolored)
    verify_list_coloring(g, full, lists)
    assert all(full[v] == c for v, c in partial.items())


# -- randomized / property-based ----------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_random_non_gallai_graphs_with_degree_lists(seed):
    """Random 2-degenerate-ish graphs containing an even cycle are degree-choosable."""
    rng = random.Random(seed)
    n = rng.randint(6, 16)
    g = classic.cycle(n if n % 2 == 0 else n + 1)  # even cycle core
    m = g.number_of_vertices()
    for extra in range(rng.randint(1, 5)):
        u = rng.randrange(m)
        g.add_edge(("x", extra), u)
        g.add_edge(("x", extra), (u + 1) % m)
    lists = ListAssignment(
        {v: frozenset(rng.sample(range(1, 10), g.degree(v))) for v in g}
    )
    if not is_degree_choosable_instance(g, lists):
        return
    try:
        coloring = degree_list_coloring(g, lists)
    except ColoringError:
        # allowed only if genuinely unsolvable, which the promise excludes
        raise
    verify_list_coloring(g, coloring, lists)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_planar_triangulations_with_degree_lists(seed):
    g = planar.stacked_triangulation(12, seed=seed)
    lists = degree_lists(g)
    coloring = degree_list_coloring(g, lists)
    verify_list_coloring(g, coloring, lists)
