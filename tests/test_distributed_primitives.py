"""Tests for the message-passing primitives: Cole–Vishkin, Linial, reduction, greedy."""

from collections import deque

import pytest

from repro.coloring.verification import verify_coloring
from repro.graphs.generators import classic, planar, sparse
from repro.lowerbounds.linial_paths import log_star_floor
from repro.distributed import (
    cole_vishkin_iterations,
    color_rooted_forest,
    delta_plus_one_coloring,
    greedy_distributed_coloring,
    linial_schedule,
)
from repro.distributed.linial import (
    ColorReductionAlgorithm,
    LinialColoringAlgorithm,
    _next_prime,
    _polynomial_value,
)
from repro.local.simulator import run_node_algorithm


def bfs_parents(graph, root):
    parents = {root: None}
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for w in graph.neighbors(u):
            if w not in parents:
                parents[w] = u
                queue.append(w)
    return parents


def forest_parents(graph):
    parents = {}
    for component in graph.connected_components():
        sub_root = next(iter(component))
        parents.update(bfs_parents(graph.subgraph(component), sub_root))
    return parents


# -- Cole–Vishkin -------------------------------------------------------------

@pytest.mark.parametrize("n", [2, 10, 63, 200])
def test_cole_vishkin_on_paths(n):
    g = classic.path(n)
    result = color_rooted_forest(g, bfs_parents(g, 0))
    assert result.finished
    colors = result.outputs
    assert set(colors.values()) <= {0, 1, 2}
    assert all(colors[u] != colors[v] for u, v in g.edges())


def test_cole_vishkin_on_random_trees_and_forests():
    for seed in range(4):
        t = classic.random_tree(60, seed=seed)
        result = color_rooted_forest(t, bfs_parents(t, 0))
        verify_coloring(t, result.outputs)
        assert set(result.outputs.values()) <= {0, 1, 2}
    forest = classic.random_tree(20, seed=9)
    forest2 = classic.random_tree(15, seed=10).relabeled({i: ("b", i) for i in range(15)})
    for v in forest2.vertices():
        forest.add_vertex(v)
    for u, v in forest2.edges():
        forest.add_edge(u, v)
    result = color_rooted_forest(forest, forest_parents(forest))
    verify_coloring(forest, result.outputs)


def test_cole_vishkin_round_complexity_is_log_star_like():
    """Rounds grow far slower than log n — compare against c*(log* n + constant)."""
    rounds = {}
    for n in (20, 200, 2000):
        g = classic.path(n)
        rounds[n] = color_rooted_forest(g, bfs_parents(g, 0)).rounds
    # doubling n by 10x should barely change the round count
    assert rounds[2000] <= rounds[20] + 6
    for n, r in rounds.items():
        assert r <= 4 * (log_star_floor(n) + 10)


def test_cole_vishkin_iterations_monotone_small():
    assert cole_vishkin_iterations(10) <= cole_vishkin_iterations(10**6)
    assert cole_vishkin_iterations(10**6) < 12


# -- Linial -------------------------------------------------------------------

def test_next_prime_and_polynomial():
    assert _next_prime(1) == 2
    assert _next_prime(7) == 11
    assert _next_prime(10) == 11
    # polynomial with coefficients of 11 base 5 = [1, 2] -> p(x) = 1 + 2x mod 5
    assert _polynomial_value(11, 0, 5, 1) == 1
    assert _polynomial_value(11, 3, 5, 1) == (1 + 6) % 5


def test_linial_schedule_shrinks():
    schedule = linial_schedule(10_000, 4)
    sizes = [m for m, _q, _d in schedule]
    assert sizes == sorted(sizes, reverse=True)
    assert len(schedule) <= 8
    for m, q, d in schedule:
        assert q ** (d + 1) >= m
        assert q > d * 4


def test_linial_coloring_is_proper_and_small_palette():
    g = classic.random_regular_graph(60, 4, seed=1)
    run = run_node_algorithm(g, LinialColoringAlgorithm, inputs={v: 4 for v in g})
    colors = {v: c for v, (c, _p) in run.outputs.items()}
    verify_coloring(g, colors)
    palette = max(p for _c, p in run.outputs.values())
    assert palette <= 200  # O(Delta^2)-ish, far below n


def test_color_reduction_to_delta_plus_one():
    g = classic.random_regular_graph(40, 3, seed=2)
    # start from the identity coloring with n colors
    initial = {v: i for i, v in enumerate(g.vertices())}
    inputs = {v: (initial[v], len(g), 3) for v in g}
    run = run_node_algorithm(g, ColorReductionAlgorithm, inputs=inputs, max_rounds=len(g) + 5)
    verify_coloring(g, run.outputs)
    assert set(run.outputs.values()) <= set(range(4))


@pytest.mark.parametrize("maker,args", [
    (classic.random_regular_graph, (50, 4)),
    (planar.delaunay_triangulation, (50,)),
    (sparse.union_of_random_forests, (50, 2)),
])
def test_delta_plus_one_composition(maker, args):
    g = maker(*args, seed=3)
    result = delta_plus_one_coloring(g)
    verify_coloring(g, result.coloring)
    assert len(set(result.coloring.values())) <= g.max_degree() + 1
    assert result.rounds > 0


def test_delta_plus_one_on_empty_and_isolated():
    from repro.graphs import Graph

    assert delta_plus_one_coloring(Graph()).coloring == {}
    g = Graph(vertices=[1, 2, 3])
    result = delta_plus_one_coloring(g)
    assert set(result.coloring) == {1, 2, 3}


# -- greedy baseline -------------------------------------------------------------

def test_greedy_distributed_coloring():
    g = planar.stacked_triangulation(60, seed=4)
    result = greedy_distributed_coloring(g)
    verify_coloring(g, result.coloring)
    assert len(set(result.coloring.values())) <= g.max_degree() + 1
    assert result.rounds <= g.number_of_vertices()
