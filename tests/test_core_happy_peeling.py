"""Tests for the happy-vertex classification and the peeling loop (Lemma 3.1)."""

import pytest

from repro.core.happy import (
    classify_vertices,
    default_rich_ball_radius,
    paper_radius_constant,
)
from repro.core.peeling import peel_happy_layers
from repro.errors import ColoringError
from repro.graphs.generators import classic, planar, sparse


def test_paper_radius_constant_value():
    assert paper_radius_constant() == pytest.approx(12.0 / (6.0 / 5.0).bit_length() if False else 45.6, abs=0.2)


def test_default_rich_ball_radius_grows_logarithmically():
    assert default_rich_ball_radius(1) == 1
    r100 = default_rich_ball_radius(100)
    r10000 = default_rich_ball_radius(10_000)
    assert r10000 == pytest.approx(2 * r100, rel=0.05)


# -- classification ---------------------------------------------------------------

def test_classification_poor_vertices():
    g = classic.star(10)
    cls = classify_vertices(g, d=3)
    assert cls.poor == {0}
    assert cls.rich == set(range(1, 11))


def test_low_degree_vertices_are_happy():
    g = classic.random_tree(30, seed=1)
    cls = classify_vertices(g, d=3)
    # every rich vertex of a tree has a leaf (degree <= 2) in its rich ball,
    # so no rich vertex is sad; vertices of degree > 3 are poor
    assert not cls.sad
    assert cls.happy == {v for v in g if g.degree(v) <= 3}
    assert cls.poor == {v for v in g if g.degree(v) > 3}


def test_d_regular_gallai_free_graph_is_happy_via_gallai_test():
    g = classic.random_regular_graph(20, 4, seed=2)
    cls = classify_vertices(g, d=4)
    # no vertex of degree <= 3, so happiness must come from non-Gallai balls
    assert cls.happy == set(g.vertices())
    assert not cls.poor


def test_sad_component_shortcut():
    # a (d+1)-clique is a d-regular Gallai tree: all its vertices are sad
    g = classic.complete_graph(5)
    cls = classify_vertices(g, d=4)
    assert cls.sad == set(g.vertices())
    assert not cls.happy


def test_small_radius_can_make_vertices_sad():
    """With radius 1 on a large even cycle, balls are paths (Gallai trees)."""
    g = classic.cycle(30)
    cls_small = classify_vertices(g, d=3, radius=1)
    assert cls_small.happy == set(g.vertices())  # degree 2 <= d-1: slack everywhere
    # force the regime with d = 3 but pretend slack does not exist
    cls_forced = classify_vertices(g, d=3, radius=1, slack_vertices=set())
    assert cls_forced.sad == set(g.vertices())
    cls_large = classify_vertices(g, d=3, radius=20, slack_vertices=set())
    assert cls_large.happy == set(g.vertices())  # the whole even cycle is not Gallai


def test_happiness_monotone_in_radius():
    g = planar.delaunay_triangulation(60, seed=3)
    small = classify_vertices(g, d=6, radius=1)
    large = classify_vertices(g, d=6, radius=4)
    assert small.happy <= large.happy


def test_classification_ball_rounds():
    g = classic.cycle(10)
    cls = classify_vertices(g, d=3, radius=4)
    assert cls.ball_rounds == 5


# -- Lemma 3.1 bounds ----------------------------------------------------------------

@pytest.mark.parametrize("maker,kwargs,d", [
    (planar.stacked_triangulation, {"n_vertices": 60, "seed": 4}, 6),
    (sparse.union_of_random_forests, {"n": 60, "arboricity": 2, "seed": 5}, 4),
    (classic.random_regular_graph, {"n": 40, "d": 4, "seed": 6}, 4),
])
def test_lemma_3_1_lower_bound(maker, kwargs, d):
    g = maker(**kwargs)
    cls = classify_vertices(g, d=d)
    n = g.number_of_vertices()
    assert len(cls.happy) >= n / (3 * d) ** 3
    if not cls.poor:
        assert len(cls.happy) >= n / (12 * d + 1)


# -- peeling -----------------------------------------------------------------------

def test_peeling_terminates_and_partitions():
    g = planar.stacked_triangulation(50, seed=7)
    result = peel_happy_layers(g, d=6)
    removed = [v for layer in result.layers for v in layer.removed]
    assert sorted(map(repr, removed)) == sorted(map(repr, g.vertices()))
    assert result.number_of_layers >= 1
    assert result.ledger.total() > 0


def test_peeling_layer_count_scales_logarithmically():
    small = peel_happy_layers(sparse.union_of_random_forests(40, 2, seed=8), d=4)
    large = peel_happy_layers(sparse.union_of_random_forests(400, 2, seed=8), d=4)
    # Lemma 3.1 bounds the layer count by O(d log n): a 10x larger graph
    # should cost only a few more layers
    assert large.number_of_layers <= small.number_of_layers + 10


def test_peeling_happy_fractions_respect_lemma():
    g = classic.random_regular_graph(60, 4, seed=9)
    result = peel_happy_layers(g, d=4)
    for fraction in result.happy_fractions():
        assert fraction >= 1 / (3 * 4) ** 3


def test_peeling_promise_violation_raises():
    g = classic.complete_graph(6)  # mad = 5 > 4 and contains K_5
    with pytest.raises(ColoringError):
        peel_happy_layers(g, d=4)


def test_peeling_adaptive_radius_recovers_from_stall():
    """With a tiny initial radius and no slack witnesses, the radius doubles.

    On a long even cycle with the slack witnesses suppressed, radius-1 balls
    are paths (Gallai trees), so no vertex is happy until the radius grows
    enough for the balls to contain the whole (non-Gallai) even cycle.
    """
    g = classic.cycle(30)
    result = peel_happy_layers(g, d=3, radius=1, slack_fn=lambda current: set())
    removed = [v for layer in result.layers for v in layer.removed]
    assert len(removed) == 30
    assert any(layer.radius_used > 1 for layer in result.layers)


def test_peeling_small_radius_on_regular_graph_still_terminates():
    g = classic.random_regular_graph(30, 4, seed=10)
    result = peel_happy_layers(g, d=4, radius=1)
    removed = [v for layer in result.layers for v in layer.removed]
    assert len(removed) == 30


def test_peeling_empty_graph():
    from repro.graphs import Graph

    assert peel_happy_layers(Graph(), d=3).number_of_layers == 0
