"""Mutation tests for the conformance oracles.

Every oracle must reject at least one *corrupted* witness with a precise
diagnostic — a verifier that accepts everything is worse than none.  Each
test builds a valid witness, checks the oracle passes it, then applies a
targeted mutation (swap two colors, violate a list, fake a clique vertex,
drop a ruling-forest edge, move an H-partition vertex, inflate a round
count, fabricate global knowledge in a node program) and asserts the
oracle rejects it and the diagnostic names the corruption.
"""

import pytest

from repro.coloring import degeneracy_greedy_coloring, random_lists, uniform_lists
from repro.core import color_sparse_graph
from repro.distributed import h_partition, ruling_forest
from repro.distributed.stabilizing import STABILIZING_PROTOCOLS
from repro.errors import VerificationError
from repro.faults import (
    FaultEvent,
    FaultPlan,
    PerturbableNetwork,
    palette_bound,
    run_stabilizing,
)
from repro.graphs.generators import classic, sparse
from repro.local import run_node_algorithm
from repro.local.node import BatchNodeAlgorithm, NodeAlgorithm
from repro.verify import (
    CliqueWitnessOracle,
    ContainmentOracle,
    DichotomyOracle,
    HPartitionOracle,
    ListColoringOracle,
    LocalityOracle,
    PaletteBudgetOracle,
    ProperColoringOracle,
    RecoveryOracle,
    RoundEnvelopeOracle,
    RulingForestOracle,
    SimulationParityOracle,
    artifact_failures,
    audit_locality,
)


@pytest.fixture(scope="module")
def instance():
    graph = sparse.union_of_random_forests(50, 2, seed=9).freeze()
    result = color_sparse_graph(graph, 4)
    return graph, result


# ---------------------------------------------------------------------------
# coloring oracles
# ---------------------------------------------------------------------------

def test_proper_coloring_oracle_rejects_swapped_edge(instance):
    graph, result = instance
    oracle = ProperColoringOracle()
    assert oracle.check(graph=graph, coloring=result.coloring).ok

    u, v = next(iter(graph.edges()))
    corrupted = dict(result.coloring)
    corrupted[u] = corrupted[v]  # make one edge monochromatic
    verdict = oracle.check(graph=graph, coloring=corrupted)
    assert not verdict.ok
    assert any("monochromatic" in d for d in verdict.diagnostics)
    assert any(repr(u) in d or repr(v) in d for d in verdict.diagnostics)


def test_proper_coloring_oracle_rejects_missing_vertex(instance):
    graph, result = instance
    victim = graph.vertices()[0]
    partial = {w: c for w, c in result.coloring.items() if w != victim}
    verdict = ProperColoringOracle().check(graph=graph, coloring=partial)
    assert not verdict.ok
    assert any("uncolored" in d and repr(victim) in d for d in verdict.diagnostics)
    # uncolored vertices are legal when completeness is waived
    assert ProperColoringOracle().check(
        graph=graph, coloring=partial, require_complete=False
    ).ok


def test_list_coloring_oracle_rejects_out_of_list_color(instance):
    graph, result = instance
    lists = uniform_lists(graph, 4)
    oracle = ListColoringOracle()
    assert oracle.check(graph=graph, coloring=result.coloring, lists=lists).ok

    victim = graph.vertices()[3]
    corrupted = dict(result.coloring)
    corrupted[victim] = "not-a-color"
    verdict = oracle.check(graph=graph, coloring=corrupted, lists=lists)
    assert not verdict.ok
    assert any(
        "outside its list" in d and repr(victim) in d for d in verdict.diagnostics
    )


def test_palette_budget_oracle_rejects_overflow(instance):
    graph, result = instance
    assert PaletteBudgetOracle().check(coloring=result.coloring, budget=4).ok
    verdict = PaletteBudgetOracle().check(coloring=result.coloring, budget=2)
    assert not verdict.ok
    assert any("budget is 2" in d for d in verdict.diagnostics)


def test_clique_witness_oracle_rejects_fakes():
    graph = classic.complete_graph(5)
    graph.add_vertex("outside")
    oracle = CliqueWitnessOracle()
    assert oracle.check(graph=graph, clique=[0, 1, 2, 3, 4], size=5).ok

    # non-adjacent vertex smuggled in
    verdict = oracle.check(graph=graph, clique=[0, 1, 2, 3, "outside"], size=5)
    assert not verdict.ok
    assert any("not an edge" in d for d in verdict.diagnostics)
    # wrong size
    verdict = oracle.check(graph=graph, clique=[0, 1, 2], size=5)
    assert not verdict.ok
    assert any("expected 5" in d for d in verdict.diagnostics)
    # vertex not in the graph at all
    verdict = oracle.check(graph=graph, clique=[0, 1, 2, 3, "ghost"], size=5)
    assert not verdict.ok
    assert any("not in the graph" in d for d in verdict.diagnostics)
    # repeated vertex
    verdict = oracle.check(graph=graph, clique=[0, 1, 2, 3, 3], size=5)
    assert not verdict.ok
    assert any("repeats" in d for d in verdict.diagnostics)


def test_dichotomy_oracle_finds_real_clique_and_rejects_ambiguity():
    # a k-tree contains a (k+1)-clique, so the Theorem 1.3 driver at d = k
    # must return the clique side of the dichotomy
    graph = sparse.random_k_tree(30, 3, seed=2).freeze()
    result = color_sparse_graph(graph, 3)
    assert result.clique is not None
    oracle = DichotomyOracle()
    assert oracle.check(graph=graph, result=result, d=3).ok

    result.coloring = {}  # corrupt: both sides present
    verdict = oracle.check(graph=graph, result=result, d=3)
    assert not verdict.ok
    assert any("exactly one" in d for d in verdict.diagnostics)


def test_dichotomy_oracle_list_side(instance):
    graph, _ = instance
    lists = random_lists(graph, 4, palette_size=8, seed=5)
    result = color_sparse_graph(graph, 4, lists=lists)
    verdict = DichotomyOracle().check(graph=graph, result=result, d=4, lists=lists)
    assert verdict.ok and verdict.checked > len(graph)


# ---------------------------------------------------------------------------
# structural oracles
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def partition_instance():
    graph = sparse.union_of_random_forests(60, 2, seed=4)
    return graph, h_partition(graph, arboricity=2)


def test_h_partition_oracle_accepts_and_rejects(partition_instance):
    graph, partition = partition_instance
    oracle = HPartitionOracle()
    assert oracle.check(graph=graph, partition=partition).ok

    # corrupt: duplicate a vertex into a fresh trailing class — classes no
    # longer partition V and class_of disagrees with the membership
    victim = max(graph.vertices(), key=graph.degree)
    corrupted = h_partition(graph, arboricity=2)
    corrupted.classes.append({victim})
    verdict = oracle.check(graph=graph, partition=corrupted)
    assert not verdict.ok
    assert any("appears in classes" in d and repr(victim) in d
               for d in verdict.diagnostics)

    # corrupt: understate the degree bound so the peel invariant breaks
    squeezed = h_partition(graph, arboricity=2)
    squeezed.degree_bound = 0.5
    verdict = oracle.check(graph=graph, partition=squeezed)
    assert not verdict.ok
    assert any("degree bound" in d for d in verdict.diagnostics)


def test_h_partition_oracle_rejects_dropped_vertex(partition_instance):
    graph, _ = partition_instance
    corrupted = h_partition(graph, arboricity=2)
    victim = next(iter(corrupted.classes[0]))
    corrupted.classes[0].discard(victim)
    del corrupted.class_of[victim]
    verdict = HPartitionOracle().check(graph=graph, partition=corrupted)
    assert not verdict.ok
    assert any("in no class" in d and repr(victim) in d for d in verdict.diagnostics)


@pytest.fixture(scope="module")
def forest_instance():
    graph = classic.grid_2d(6, 8).freeze()
    subset = set(graph.vertices())
    return graph, subset, ruling_forest(graph, subset, alpha=3)


def test_ruling_forest_oracle_accepts(forest_instance):
    graph, subset, forest = forest_instance
    verdict = RulingForestOracle().check(graph=graph, forest=forest, subset=subset)
    assert verdict.ok and verdict.checked > 0


def test_ruling_forest_oracle_rejects_dropped_edge(forest_instance):
    graph, subset, _ = forest_instance
    forest = ruling_forest(graph, subset, alpha=3)
    # re-parent a non-root vertex onto a non-neighbour: the tree edge the
    # domination argument walks no longer exists in the graph
    victim = next(v for v, p in forest.parent.items() if p is not None)
    far = next(
        u for u in graph.vertices()
        if u != victim and not graph.has_edge(victim, u)
    )
    forest.parent[victim] = far
    verdict = RulingForestOracle().check(graph=graph, forest=forest, subset=subset)
    assert not verdict.ok
    assert any("not an edge" in d and repr(victim) in d for d in verdict.diagnostics)


def test_ruling_forest_oracle_rejects_uncovered_subset(forest_instance):
    graph, subset, _ = forest_instance
    forest = ruling_forest(graph, subset, alpha=3)
    victim = next(v for v, p in forest.parent.items() if p is not None)
    del forest.parent[victim]
    del forest.depth[victim]
    del forest.tree_of[victim]
    verdict = RulingForestOracle().check(graph=graph, forest=forest, subset=subset)
    assert not verdict.ok
    assert any("domination" in d for d in verdict.diagnostics)


def test_ruling_forest_oracle_rejects_close_roots(forest_instance):
    graph, subset, _ = forest_instance
    forest = ruling_forest(graph, subset, alpha=3)
    root = forest.roots[0]
    neighbor = next(iter(graph.neighbors(root)))
    # promote a neighbour of a root to root: distance 1 < alpha = 3
    forest.roots.append(neighbor)
    forest.parent[neighbor] = None
    forest.depth[neighbor] = 0
    forest.tree_of[neighbor] = neighbor
    verdict = RulingForestOracle().check(graph=graph, forest=forest)
    assert not verdict.ok
    assert any("distance" in d and "alpha" in d for d in verdict.diagnostics)


# ---------------------------------------------------------------------------
# rounds, parity, artifacts
# ---------------------------------------------------------------------------

def test_round_envelope_oracle(instance):
    graph, result = instance
    oracle = RoundEnvelopeOracle()
    assert oracle.check(
        kind="theorem13", rounds=result.rounds, n=len(graph), d=4
    ).ok
    verdict = oracle.check(
        kind="theorem13", rounds=10 ** 9, n=len(graph), d=4
    )
    assert not verdict.ok
    assert any("exceed" in d for d in verdict.diagnostics)
    with pytest.raises(ValueError, match="unknown round envelope"):
        oracle.check(kind="nonsense", rounds=1)


def test_simulation_parity_oracle_rejects_divergence():
    from repro.distributed.greedy_baseline import GreedyLocalMaximaAlgorithm

    graph = classic.cycle(9)
    inputs = {v: 2 for v in graph}
    a = run_node_algorithm(graph, GreedyLocalMaximaAlgorithm, inputs=inputs, strict=True)
    b = run_node_algorithm(graph, GreedyLocalMaximaAlgorithm, inputs=inputs, strict=True)
    assert SimulationParityOracle().check(result_a=a, result_b=b).ok
    b.outputs[0] = 99
    b.rounds += 1
    verdict = SimulationParityOracle().check(result_a=a, result_b=b)
    assert not verdict.ok
    assert any("rounds diverge" in d for d in verdict.diagnostics)
    assert any("output of 0" in d for d in verdict.diagnostics)


def test_verdict_raise_if_failed_carries_verdict(instance):
    graph, result = instance
    corrupted = dict(result.coloring)
    u, v = next(iter(graph.edges()))
    corrupted[u] = corrupted[v]
    verdict = ProperColoringOracle().check(graph=graph, coloring=corrupted)
    with pytest.raises(VerificationError, match="monochromatic") as info:
        verdict.raise_if_failed()
    assert info.value.verdict is verdict


def _tiny_artifact():
    return {
        "schema_version": 1,
        "name": "theorem13-colors",
        "generated_at": 0.0,
        "metadata": {"scenario": {"name": "theorem13-colors", "paper_ref": "Theorem 1.3"}},
        "rows": [
            {
                "instance": "n=40 d=4",
                "algorithm": "thm1.3 uniform lists",
                "metrics": {"colors": 4, "budget": 4, "rounds": 100, "valid": True},
                "seconds": 0.1,
            },
            {
                "instance": "n=40 d=4",
                "algorithm": "thm1.3 uniform lists [flat]",
                "metrics": {"colors": 4, "budget": 4, "rounds": 100, "valid": True},
                "seconds": 0.1,
            },
        ],
    }


def test_artifact_oracles_accept_then_reject_corruptions():
    assert artifact_failures(_tiny_artifact()) == []

    over_budget = _tiny_artifact()
    over_budget["rows"][0]["metrics"]["colors"] = 9
    failures = artifact_failures(over_budget)
    assert any("budget" in f for f in failures)

    diverged = _tiny_artifact()
    diverged["rows"][1]["metrics"]["rounds"] = 101
    failures = artifact_failures(diverged)
    assert any("variant" in f and "rounds" in f for f in failures)

    blown = _tiny_artifact()
    for row in blown["rows"]:
        row["metrics"]["rounds"] = 10 ** 9
    failures = artifact_failures(blown)
    assert any("envelope" in f for f in failures)

    broken_schema = _tiny_artifact()
    del broken_schema["rows"]
    assert any("rows" in f for f in artifact_failures(broken_schema))

    # malformed rows must come back as schema failures, never tracebacks
    mangled = _tiny_artifact()
    mangled["rows"].append({"metrics": {"colors": 9, "budget": 1, "rounds": 1}})
    mangled["rows"].append({"instance": 7, "algorithm": None, "metrics": []})
    failures = artifact_failures(mangled)
    assert any("budget" in f for f in failures)


def test_round_envelope_fires_for_theorem13_rounds_artifact():
    """theorem13-rounds labels carry no d=; the envelope oracle must read
    it from metadata.params instead of silently skipping the scenario."""
    from repro.verify.artifact import verify_artifact_dict

    artifact = {
        "schema_version": 1,
        "name": "theorem13-rounds",
        "generated_at": 0.0,
        "metadata": {
            "scenario": {"name": "theorem13-rounds", "paper_ref": "Theorem 1.3"},
            "params": {"d": 4, "sizes": [40], "backends": ["dict"]},
        },
        "rows": [
            {
                "instance": "n=40",
                "algorithm": "thm1.3 (paper radius)",
                "metrics": {"n": 40, "rounds": 12_000},
                "seconds": 0.1,
            },
        ],
    }
    envelope = next(
        v for v in verify_artifact_dict(artifact) if "round-envelope" in v.oracle
    )
    assert envelope.ok and envelope.checked > 0  # the oracle really fired
    artifact["rows"][0]["metrics"]["rounds"] = 10 ** 9
    assert any("envelope" in f for f in artifact_failures(artifact))


# ---------------------------------------------------------------------------
# the locality auditor rejects cheating programs
# ---------------------------------------------------------------------------

class _GlobalPeeker(BatchNodeAlgorithm):
    """A batched program that outputs the *array length* — global knowledge
    no message-passing node could have.  On a truncated r-ball network the
    array is smaller, so the auditor must flag every vertex."""

    fallback = None

    def initialize_batch(self, context):
        super().initialize_batch(context)

    def is_finished_batch(self):
        return True

    def results_batch(self):
        return [self.context.n] * self.context.n


class _HonestConstant(NodeAlgorithm):
    def result(self):
        return 42


def test_locality_auditor_flags_global_peeker():
    graph = classic.path(30)
    report = audit_locality(graph, _GlobalPeeker, vertices=[10, 15])
    # rounds == 0, so the ball has radius 1 — far smaller than the path
    assert report.rounds == 0
    assert not report.ok
    assert {v.vertex for v in report.violations} == {10, 15}
    verdict = LocalityOracle().check(
        graph=graph, algorithm_factory=_GlobalPeeker, vertices=[10]
    )
    assert not verdict.ok
    assert any("beyond its r-ball" in d for d in verdict.diagnostics)


def test_locality_auditor_passes_honest_program():
    graph = classic.path(30)
    report = audit_locality(graph, _HonestConstant, vertices=[0, 7, 29])
    assert report.ok


# ---------------------------------------------------------------------------
# recovery + containment oracles reject doctored stabilization traces
# ---------------------------------------------------------------------------

def _stabilization_trace():
    """A fresh, deterministic dynamic-run witness to tamper with.

    One corrupt-color fault at round 2 on a 30-path: the conflict takes
    two rounds to resolve (records with conflicts > 0 and legal=False
    exist), then the run quiesces.  Rebuilt per test — mutations below
    edit the records in place.
    """
    graph = classic.path(30)
    initial = degeneracy_greedy_coloring(graph)
    plan = FaultPlan(
        events=(FaultEvent(2, "corrupt-color", (5,), value=initial[4]),),
        seed=0,
    )
    per_node, _batched = STABILIZING_PROTOCOLS["min-plus-one"]
    trace = run_stabilizing(
        PerturbableNetwork(graph, backend="dict"),
        per_node,
        plan=plan,
        budget=palette_bound(graph, plan),
        initial_coloring=initial,
        max_rounds=50,
        protocol="min-plus-one",
    )
    assert trace.quiescent  # precondition for every mutation below
    return trace


def test_recovery_oracle_accepts_genuine_trace():
    trace = _stabilization_trace()
    assert RecoveryOracle().check(trace=trace).ok
    assert ContainmentOracle().check(trace=trace).ok


def test_recovery_oracle_rejects_log_hiding_illegal_coloring():
    # the fault round really left an illegal coloring; whitewash the flag
    trace = _stabilization_trace()
    dirty = next(r for r in trace.records if not r.legal)
    dirty.legal = True
    verdict = RecoveryOracle().check(trace=trace)
    assert not verdict.ok
    assert any("misstates" in d for d in verdict.diagnostics)


def test_recovery_oracle_rejects_understated_conflicts():
    trace = _stabilization_trace()
    dirty = next(r for r in trace.records if r.conflicts > 0)
    dirty.conflicts = 0
    verdict = RecoveryOracle().check(trace=trace)
    assert not verdict.ok
    assert any("replay finds" in d for d in verdict.diagnostics)


def test_recovery_oracle_rejects_hidden_recolor():
    # drop a recorded recolor: the replayed deltas no longer reach the
    # claimed final coloring (and intermediate conflict counts drift)
    trace = _stabilization_trace()
    dirty = next(r for r in trace.records if r.changes)
    dirty.changes = ()
    verdict = RecoveryOracle().check(trace=trace)
    assert not verdict.ok
    assert any(
        "replay finds" in d or "disagrees" in d for d in verdict.diagnostics
    )


def test_recovery_oracle_rejects_noisy_quiescence_claim():
    # quiescent runs must end silent: smuggle a (no-op) change into the
    # final round and the claim no longer holds
    trace = _stabilization_trace()
    last = trace.records[-1]
    last.changes = ((0, trace.final_coloring[0]),)
    verdict = RecoveryOracle().check(trace=trace)
    assert not verdict.ok
    assert any("still changed" in d for d in verdict.diagnostics)


def test_containment_oracle_rejects_out_of_cone_recolor():
    # vertex 25 is 20 hops from the fault site; a round-3 recolor there
    # cannot be caused by the round-2 perturbation
    trace = _stabilization_trace()
    record = next(r for r in trace.records if r.round == 3)
    record.changes = record.changes + ((25, trace.final_coloring[25]),)
    verdict = ContainmentOracle().check(trace=trace)
    assert not verdict.ok
    assert any("causal cone" in d for d in verdict.diagnostics)


def test_containment_oracle_enforces_declared_radius_bound():
    trace = _stabilization_trace()
    assert ContainmentOracle().check(trace=trace, radius_bound=5).ok
    verdict = ContainmentOracle().check(trace=trace, radius_bound=0)
    assert not verdict.ok
    assert any("exceeds the declared" in d for d in verdict.diagnostics)


def _dynamic_artifact():
    return {
        "schema_version": 1,
        "name": "dynamic",
        "generated_at": 0.0,
        "metadata": {
            "scenario": {"name": "dynamic", "paper_ref": "dynamic graphs"}
        },
        "rows": [
            {
                "instance": "planar n=36 faults=corrupt",
                "algorithm": "min-plus-one [dict]",
                "metrics": {
                    "rounds": 9,
                    "quiescent": True,
                    "legal": True,
                    "rounds_to_recovery": 2,
                    "recovered": True,
                    "recolored_vertices": 3,
                    "containment_radius": 1,
                    "containment_violations": 0,
                    "recovery_cap": 400,
                    "containment_bound": 400,
                },
                "seconds": 0.1,
            },
        ],
    }


def test_artifact_recovery_oracle_rejects_corrupted_dynamic_rows():
    assert artifact_failures(_dynamic_artifact()) == []

    noisy = _dynamic_artifact()
    noisy["rows"][0]["metrics"]["quiescent"] = False
    assert any("silent state" in f for f in artifact_failures(noisy))

    unrecovered = _dynamic_artifact()
    unrecovered["rows"][0]["metrics"].update(recovered=False, rounds_to_recovery=-1)
    assert any("never recovered" in f for f in artifact_failures(unrecovered))

    leaky = _dynamic_artifact()
    leaky["rows"][0]["metrics"]["containment_violations"] = 3
    assert any("causal cone" in f for f in artifact_failures(leaky))

    slow = _dynamic_artifact()
    slow["rows"][0]["metrics"]["rounds_to_recovery"] = 401
    assert any("exceeds the cap" in f for f in artifact_failures(slow))

    wide = _dynamic_artifact()
    wide["rows"][0]["metrics"]["containment_radius"] = 500
    assert any("exceeds" in f for f in artifact_failures(wide))
