"""The instance corpus: content addressing, caching, golden seed stability.

The golden pins below are the corpus's reason to exist: instance digests
and per-algorithm results (coloring fingerprints, charged-round totals)
for the standard named set.  A substrate refactor that silently changes a
generated graph, a coloring or a round ledger fails here loudly — with the
instance name in the assertion — instead of drifting unnoticed.  When a
change is *intentional* (a generator rewrite, a new tie-break), update the
pinned values in the same commit and say so.
"""

import json

import pytest

from repro.coloring import uniform_lists
from repro.core import classify_vertices, color_sparse_graph
from repro.corpus import (
    FAMILIES,
    InstanceCorpus,
    InstanceSpec,
    STANDARD_INSTANCES,
    graph_digest,
    standard_instance,
)
from repro.distributed import barenboim_elkin_coloring, delta_plus_one_coloring
from repro.distributed.greedy_baseline import greedy_distributed_coloring
from repro.errors import GeneratorError, ListAssignmentError
from repro.verify import CliqueWitnessOracle, coloring_digest


@pytest.fixture(scope="module")
def corpus():
    return InstanceCorpus(cache_dir=None)


# ---------------------------------------------------------------------------
# specs, naming, content addressing
# ---------------------------------------------------------------------------

def test_spec_names_and_keys_are_stable():
    spec = InstanceSpec.of("forest-union", n=80, arboricity=2, seed=1)
    assert spec.name == "forest-union/arboricity=2,n=80,seed=1"
    assert spec.spec_key == InstanceSpec.of(
        "forest-union", seed=1, arboricity=2, n=80
    ).spec_key  # keyword order does not matter
    assert spec == standard_instance("forest-union-80-a2-s1")
    with pytest.raises(GeneratorError, match="unknown corpus family"):
        InstanceSpec.of("no-such-family", n=3)
    with pytest.raises(GeneratorError, match="unknown standard instance"):
        standard_instance("nope")


def test_graph_digest_is_order_independent(corpus):
    spec = standard_instance("grid-6x10")
    a = corpus.build(spec)
    b = spec.build()
    assert graph_digest(a) == graph_digest(b)
    b.add_edge((0, 0), (5, 9))
    assert graph_digest(a) != graph_digest(b)


#: the golden content digests of the standard corpus; regenerating any
#: instance must reproduce these bit for bit (update intentionally only)
GOLDEN_DIGESTS = {
    "planar-tri-60-s3": "427b715b7d529e2c",
    "bounded-mad-64-k2-s5": "ee8c0cacde631cc8",
    "forest-union-80-a2-s1": "9c3b7691486e99df",
    "k-tree-48-k3-s2": "6225bd5ae4208f9e",
    "power-law-72-m2-s4": "d458c4c023a3847b",
    "regular-40-d4-s7": "a36dea4d268162f2",
    "torus-6x8": "c7ad37b06d5c355d",
    "grid-6x10": "35910ea6d7a58382",
    "path-33": "545cb4b165695f17",
    "single-vertex": "0270da4daac514f3",
    "empty-0": "e3b0c44298fc1c14",
}


def test_golden_instance_digests(corpus):
    assert set(GOLDEN_DIGESTS) == set(STANDARD_INSTANCES)
    for name, expected in GOLDEN_DIGESTS.items():
        assert corpus.digest(standard_instance(name)) == expected, name


def test_golden_algorithm_results(corpus):
    """Seed-stability pins: substrate refactors that change colorings or
    charged rounds on the named instances must fail loudly."""
    forest = corpus.frozen(standard_instance("forest-union-80-a2-s1"))
    thm13 = color_sparse_graph(forest, 4, backend="flat")
    assert (coloring_digest(thm13.coloring), thm13.rounds) == (
        "4d4fac6e85bfad60", 17829,
    )
    be = barenboim_elkin_coloring(forest, arboricity=2, backend="flat")
    assert (coloring_digest(be.coloring), be.rounds, be.colors_used) == (
        "f4e82e1bd656780d", 82, 4,
    )

    planar = corpus.frozen(standard_instance("planar-tri-60-s3"))
    thm13p = color_sparse_graph(planar, 6)
    assert (coloring_digest(thm13p.coloring), thm13p.rounds) == (
        "7bd4985dce6fd1d8", 16069,
    )
    greedy = greedy_distributed_coloring(planar)
    assert (coloring_digest(greedy.coloring), greedy.rounds) == (
        "12b39447912c7d4c", 13,
    )


def test_golden_clique_witness(corpus):
    """The k-tree instance carries its (k+1)-clique: the dichotomy's
    witness side, machine-checked by the clique oracle."""
    graph = corpus.frozen(standard_instance("k-tree-48-k3-s2"))
    result = color_sparse_graph(graph, 3)
    assert result.clique == (0, 1, 2, 3)
    CliqueWitnessOracle().check(
        graph=graph, clique=result.clique, size=4
    ).raise_if_failed()


# ---------------------------------------------------------------------------
# disk cache
# ---------------------------------------------------------------------------

def test_disk_cache_roundtrip_preserves_labels(tmp_path):
    corpus = InstanceCorpus(cache_dir=tmp_path)
    spec = standard_instance("grid-6x10")
    first = corpus.build(spec)
    cached = InstanceCorpus(cache_dir=tmp_path).build(spec)
    assert graph_digest(first) == graph_digest(cached)
    # tuple labels survive the repr/literal_eval round trip
    assert (0, 0) in cached and cached.has_edge((0, 0), (0, 1))
    files = list(tmp_path.glob("grid-*.json"))
    assert len(files) == 1
    payload = json.loads(files[0].read_text())
    assert payload["digest"] == GOLDEN_DIGESTS["grid-6x10"]


def test_disk_cache_rejects_corruption(tmp_path):
    corpus = InstanceCorpus(cache_dir=tmp_path)
    spec = standard_instance("path-33")
    corpus.build(spec)
    path = next(tmp_path.glob("path-*.json"))
    payload = json.loads(path.read_text())
    payload["edges"] = payload["edges"][:-1]  # drop an edge, keep the digest
    path.write_text(json.dumps(payload))
    # the digest no longer matches the content: regenerate, do not trust
    regenerated = InstanceCorpus(cache_dir=tmp_path).build(spec)
    assert graph_digest(regenerated) == GOLDEN_DIGESTS["path-33"]


def test_env_var_selects_cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CORPUS_DIR", str(tmp_path))
    corpus = InstanceCorpus()
    corpus.build(standard_instance("path-33"))
    assert list(tmp_path.glob("path-*.json"))


# ---------------------------------------------------------------------------
# edge cases the corpus surfaces (regression tests)
# ---------------------------------------------------------------------------

def test_empty_and_single_vertex_instances_run_the_pipelines(corpus):
    empty = corpus.frozen(standard_instance("empty-0"))
    single = corpus.frozen(standard_instance("single-vertex"))

    assert color_sparse_graph(empty, 3).coloring == {}
    assert color_sparse_graph(empty, 3, backend="flat").coloring == {}
    assert delta_plus_one_coloring(empty).coloring == {}
    assert barenboim_elkin_coloring(empty, 1).coloring == {}
    assert len(uniform_lists(empty, 3)) == 0

    assert color_sparse_graph(single, 3).coloring == {0: 1}
    assert color_sparse_graph(single, 3, backend="flat").coloring == {0: 1}
    assert delta_plus_one_coloring(single).coloring == {0: 0}
    assert barenboim_elkin_coloring(single, 1).coloring == {0: 1}
    cls = classify_vertices(single, 3)
    assert cls.happy == {0} and not cls.poor


def test_forest_union_degenerate_sizes_regression():
    from repro.graphs.generators import sparse

    for n in (0, 1):
        g = sparse.union_of_random_forests(n, 3, seed=1)
        assert len(g) == n and g.number_of_edges() == 0


def test_truncated_negative_size_raises_regression():
    from repro.coloring.palette import FlatListAssignment

    flat = FlatListAssignment({0: [1, 2, 3]})
    with pytest.raises(ListAssignmentError, match="negative"):
        flat.truncated(-1)
    assert flat.truncated(0).as_dict() == {0: frozenset()}


def test_disconnected_instance_through_flat_backend(corpus):
    """Disconnected graphs (isolated vertices included) color identically
    on both backends — the corpus's forest-union family covers them."""
    from repro.graphs.graph import Graph

    g = Graph(vertices=range(6))
    g.add_edge(0, 1)
    g.add_edge(2, 3)  # vertices 4, 5 isolated
    frozen = g.freeze()
    a = color_sparse_graph(frozen, 3, backend="dict")
    b = color_sparse_graph(frozen, 3, backend="flat")
    assert a.coloring == b.coloring
    assert a.rounds == b.rounds


def test_family_matrix_is_documented():
    for family in FAMILIES.values():
        assert family.description
        assert callable(family.builder)
