"""Property-based tests (hypothesis) for core invariants across random inputs."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.assignment import random_lists, uniform_lists
from repro.coloring.greedy import degeneracy_greedy_coloring
from repro.coloring.verification import (
    is_proper_coloring,
    respects_lists,
    verify_coloring,
)
from repro.core import classify_vertices, color_sparse_graph
from repro.graphs.generators import classic, sparse
from repro.graphs.graph import Graph
from repro.graphs.properties.arboricity import arboricity
from repro.graphs.properties.degeneracy import degeneracy
from repro.graphs.properties.gallai import is_gallai_forest, is_gallai_tree
from repro.graphs.properties.mad import maximum_average_degree
from repro.distributed import delta_plus_one_coloring, ruling_forest


def random_graph(seed: int, n_max: int = 25, p: float = 0.2) -> Graph:
    rng = random.Random(seed)
    n = rng.randint(1, n_max)
    g = Graph(vertices=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    return g


# -- density invariants -----------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_mad_degeneracy_arboricity_sandwich(seed):
    g = random_graph(seed)
    if g.number_of_edges() == 0:
        return
    mad = maximum_average_degree(g)
    k = degeneracy(g)
    estimate = arboricity(g)
    # classic inequalities
    assert k <= mad + 1e-9
    assert mad <= 2 * k + 1e-9
    assert 2 * estimate.lower - 2 <= math.ceil(mad - 1e-9)
    assert math.ceil(mad - 1e-9) <= 2 * estimate.upper
    # the whole graph's average degree is a lower bound on mad
    assert g.average_degree() <= mad + 1e-9


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_mad_monotone_under_subgraphs(seed):
    g = random_graph(seed)
    rng = random.Random(seed + 1)
    vertices = g.vertices()
    subset = [v for v in vertices if rng.random() < 0.7]
    sub = g.subgraph(subset)
    assert maximum_average_degree(sub) <= maximum_average_degree(g) + 1e-9


# -- Gallai recognition vs. brute force ----------------------------------------------

def brute_force_is_gallai_forest(g: Graph) -> bool:
    from repro.graphs.properties.blocks import biconnected_components

    for block in biconnected_components(g):
        sub = g.subgraph(block)
        k = len(block)
        is_clique = sub.number_of_edges() == k * (k - 1) // 2
        is_odd_cycle = (
            k >= 3
            and k % 2 == 1
            and sub.number_of_edges() == k
            and all(sub.degree(v) == 2 for v in sub)
        )
        if not (is_clique or is_odd_cycle):
            return False
    return True


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_gallai_recognition_matches_brute_force(seed):
    g = random_graph(seed, n_max=12, p=0.3)
    assert is_gallai_forest(g) == brute_force_is_gallai_forest(g)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), blocks=st.integers(1, 6))
def test_generated_gallai_trees_recognized(seed, blocks):
    g = classic.random_gallai_tree(blocks, max_block_size=5, seed=seed)
    assert is_gallai_tree(g)


# -- greedy coloring invariant ---------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_degeneracy_greedy_bound(seed):
    g = random_graph(seed)
    coloring = degeneracy_greedy_coloring(g)
    verify_coloring(g, coloring)
    assert len(set(coloring.values())) <= degeneracy(g) + 1


# -- list assignments ------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(1, 5))
def test_random_lists_invariants(seed, k):
    g = random_graph(seed, n_max=15)
    lists = random_lists(g, k, seed=seed)
    assert lists.minimum_size() >= k
    assert lists.covers(g)
    pruned = lists.pruned_by_coloring(g, {})
    assert all(pruned[v] == lists[v] for v in g)


# -- distributed primitives --------------------------------------------------------------

@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_delta_plus_one_proper_on_random_graphs(seed):
    g = random_graph(seed, n_max=20, p=0.25)
    result = delta_plus_one_coloring(g)
    assert is_proper_coloring(g, result.coloring)
    assert len(set(result.coloring.values())) <= max(1, g.max_degree()) + 1


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), alpha=st.integers(2, 5))
def test_ruling_forest_domination_random(seed, alpha):
    g = random_graph(seed, n_max=20, p=0.25)
    subset = set(g.vertices())
    forest = ruling_forest(g, subset, alpha)
    assert subset <= forest.vertices()
    for r in forest.roots:
        nearby = g.ball(r, alpha - 1)
        assert all(other not in nearby for other in forest.roots if other != r)


# -- the main theorem end-to-end ----------------------------------------------------------

@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000), a=st.integers(2, 3))
def test_theorem_1_3_random_bounded_arboricity(seed, a):
    g = sparse.union_of_random_forests(30, a, seed=seed)
    d = 2 * a
    lists = uniform_lists(g, d)
    result = color_sparse_graph(g, d=d, lists=lists)
    assert result.succeeded
    assert is_proper_coloring(g, result.coloring)
    assert respects_lists(result.coloring, lists)
    assert len(set(result.coloring.values())) <= d


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_happy_classification_partitions_vertices(seed):
    g = sparse.random_degenerate_graph(25, 2, seed=seed)
    cls = classify_vertices(g, d=4, radius=3)
    assert cls.happy | cls.sad | cls.poor == set(g.vertices())
    assert not (cls.happy & cls.sad)
    assert not (cls.rich & cls.poor)
