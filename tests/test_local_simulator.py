"""Tests for the LOCAL-model simulator: network, engine, ball collection, ledger."""

import pytest

from repro.errors import NonTerminationError, SimulationError
from repro.graphs.generators import classic
from repro.local import (
    BallCollectionAlgorithm,
    Network,
    NodeAlgorithm,
    RoundLedger,
    SynchronousSimulator,
    collect_balls,
    collect_balls_distributed,
    run_node_algorithm,
)


# -- network -------------------------------------------------------------------

def test_network_identifiers_are_1_to_n():
    g = classic.cycle(5)
    net = Network(g)
    assert sorted(net.identifier_of.values()) == [1, 2, 3, 4, 5]
    assert all(net.vertex_of[net.identifier_of[v]] == v for v in g)


def test_network_ports_consistent():
    g = classic.star(4)
    net = Network(g)
    for v in g:
        for port in range(net.degree(v)):
            u = net.neighbor_on_port(v, port)
            assert net.neighbor_on_port(u, net.port_towards(u, v)) == v


def test_network_identifier_order_override():
    g = classic.path(3)
    net = Network(g, identifier_order=[2, 1, 0])
    assert net.identifier_of[2] == 1
    with pytest.raises(ValueError):
        Network(g, identifier_order=[0, 1])


# -- simple node programs --------------------------------------------------------

class EchoDegree(NodeAlgorithm):
    """One-round algorithm: learn the identifiers of all neighbours."""

    def initialize(self, context):
        super().initialize(context)
        self.heard = {}
        self.done = False

    def send(self, round_number):
        return {p: self.context.identifier for p in range(self.context.degree)}

    def receive(self, round_number, messages):
        self.heard = dict(messages)
        self.done = True

    def is_finished(self):
        return self.done

    def result(self):
        return sorted(self.heard.values())


def test_one_round_neighbor_exchange():
    g = classic.cycle(6)
    result = run_node_algorithm(g, EchoDegree, strict=True)
    assert result.rounds == 1
    assert result.finished
    net = Network(g)
    for v in g:
        expected = sorted(net.identifier_of[u] for u in g.neighbors(v))
        assert result.outputs[v] == expected
    assert result.messages_sent == 2 * g.number_of_edges()


class BadPortSender(NodeAlgorithm):
    def initialize(self, context):
        super().initialize(context)
        self.done = False

    def send(self, round_number):
        return {99: "boom"}

    def receive(self, round_number, messages):
        self.done = True

    def is_finished(self):
        return self.done


def test_invalid_port_raises():
    with pytest.raises(SimulationError):
        run_node_algorithm(classic.cycle(4), BadPortSender)


def test_invalid_port_debug_mode_names_the_range():
    with pytest.raises(SimulationError, match=r"valid ports are 0\.\.1"):
        run_node_algorithm(classic.cycle(4), BadPortSender, debug=True)


class ListSender(NodeAlgorithm):
    def send(self, round_number):
        return [1, 2]  # not a mapping

    def is_finished(self):
        return False


@pytest.mark.parametrize("debug", [False, True])
def test_non_mapping_send_raises_simulation_error(debug):
    with pytest.raises(SimulationError, match="expected a port -> payload"):
        run_node_algorithm(classic.cycle(4), ListSender, debug=debug, max_rounds=2)


def test_prebuilt_network_is_reused():
    g = classic.cycle(6).freeze()
    net = Network(g)
    r1 = run_node_algorithm(g, EchoDegree, network=net, strict=True)
    r2 = run_node_algorithm(g, EchoDegree, network=net, strict=True)
    assert r1.outputs == r2.outputs
    assert net.fabric is net.fabric  # built once, cached


class NeverFinishes(NodeAlgorithm):
    def is_finished(self):
        return False


def test_round_limit_reported_as_unfinished():
    result = run_node_algorithm(classic.path(3), NeverFinishes, max_rounds=5)
    assert not result.finished
    assert result.rounds == 5
    # partial outputs are still reported when not strict
    assert set(result.outputs) == set(classic.path(3).vertices())


def test_round_limit_raises_in_strict_mode():
    with pytest.raises(SimulationError, match="max_rounds=5"):
        run_node_algorithm(classic.path(3), NeverFinishes, max_rounds=5, strict=True)


def test_round_limit_error_carries_structure():
    with pytest.raises(NonTerminationError) as err:
        run_node_algorithm(classic.path(3), NeverFinishes, max_rounds=5, strict=True)
    assert err.value.rounds == 5
    assert err.value.active == 3  # every node of the path still unfinished


def test_strict_mode_passes_through_on_termination():
    result = run_node_algorithm(classic.cycle(6), EchoDegree, strict=True)
    assert result.finished
    assert result.rounds == 1


class ChattyCountdown(NodeAlgorithm):
    """Sends on all ports for ``input`` rounds, then stops."""

    def initialize(self, context):
        super().initialize(context)
        self.remaining = int(context.input)

    def send(self, round_number):
        if self.remaining <= 0:
            return {}
        return {p: "tick" for p in range(self.context.degree)}

    def receive(self, round_number, messages):
        if self.remaining > 0:
            self.remaining -= 1

    def is_finished(self):
        return self.remaining <= 0


def test_per_round_messages_accounting():
    g = classic.cycle(5)
    rounds_wanted = 3
    result = run_node_algorithm(
        g, ChattyCountdown, inputs={v: rounds_wanted for v in g}, strict=True
    )
    assert result.rounds == rounds_wanted
    assert len(result.per_round_messages) == result.rounds
    assert sum(result.per_round_messages) == result.messages_sent
    # every node sends on both ports every active round
    assert result.per_round_messages == [2 * len(g)] * rounds_wanted


def test_per_round_messages_accounting_when_unfinished():
    result = run_node_algorithm(classic.path(4), NeverFinishes, max_rounds=7)
    assert len(result.per_round_messages) == result.rounds == 7
    assert sum(result.per_round_messages) == result.messages_sent


# -- ball collection ---------------------------------------------------------------

@pytest.mark.parametrize("radius", [0, 1, 2, 3])
def test_ball_collection_matches_centralized(radius):
    g = classic.grid_2d(4, 4)
    distributed = collect_balls_distributed(g, radius, strict=True)
    assert distributed.finished
    assert distributed.rounds == radius
    centralized = collect_balls(g, radius)
    net = Network(g)
    for v in g:
        vertices, _edges = distributed.outputs[v]
        expected = {net.identifier_of[u] for u in centralized[v]}
        assert vertices == expected


def test_ball_collection_edges_are_within_ball():
    g = classic.cycle(8)
    result = collect_balls_distributed(g, 2, strict=True)
    for v in g:
        vertices, edges = result.outputs[v]
        for edge in edges:
            assert edge <= vertices


# -- ledger -------------------------------------------------------------------------

def test_ledger_totals_and_phases():
    ledger = RoundLedger()
    ledger.charge("phase A", 3, reference="ref")
    ledger.charge("phase A", 2)
    ledger.charge("phase B", 5)
    assert ledger.total() == 10
    assert ledger.by_phase() == {"phase A": 5, "phase B": 5}
    assert "total rounds: 10" in ledger.summary()


def test_ledger_extend_with_prefix():
    inner = RoundLedger()
    inner.charge("x", 2)
    outer = RoundLedger()
    outer.charge("y", 1)
    outer.extend(inner, prefix="inner: ")
    assert outer.total() == 3
    assert "inner: x" in outer.by_phase()


def test_ledger_rejects_negative():
    ledger = RoundLedger()
    with pytest.raises(ValueError):
        ledger.charge("bad", -1)


def test_simulator_reuse():
    g = classic.path(4)
    sim = SynchronousSimulator(Network(g))
    r1 = sim.run(EchoDegree)
    r2 = sim.run(EchoDegree)
    assert r1.outputs == r2.outputs


def test_ball_collection_locality_equivalence():
    """r rounds of communication give exactly the radius-r ball, no more."""
    g = classic.path(9)
    result = collect_balls_distributed(g, 2, strict=True)
    net = Network(g)
    vertices, _ = result.outputs[0]
    assert vertices == {net.identifier_of[0], net.identifier_of[1], net.identifier_of[2]}
